//! Offline stand-in for `serde` exposing the subset this workspace uses.
//!
//! The real serde is unavailable in this build environment (no registry
//! access), so this crate provides source-compatible `Serialize` /
//! `Deserialize` traits over a self-describing [`Content`] tree. The
//! `derive` feature re-exports hand-rolled derive macros from
//! `serde_derive` that follow serde's data model conventions:
//! externally-tagged enums, newtype structs serialized as their inner
//! value, `#[serde(transparent)]`, and `#[serde(default)]` /
//! `#[serde(default = "path")]` field attributes.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value: the intermediate representation between
/// typed Rust values and concrete formats (JSON in this workspace).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer that does not fit `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys (the JSON object model).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Borrows the entries when this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the elements when this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Reads any numeric variant as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::I64(v) => Some(v as f64),
            Content::U64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            _ => None,
        }
    }
}

/// Looks a key up in map content (first match, declaration order).
pub fn content_get<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error: a message plus optional type context.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error with a caller-provided message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// "expected X while deserializing T".
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError { msg: format!("expected {what} while deserializing {ty}") }
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError { msg: format!("missing field `{field}` while deserializing {ty}") }
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError { msg: format!("unknown variant `{variant}` for {ty}") }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as [`Content`].
pub trait Serialize {
    /// Converts `self` into the self-describing representation.
    fn serialize(&self) -> Content;
}

/// Types that can be rebuilt from [`Content`].
pub trait Deserialize: Sized {
    /// Rebuilds a value, failing with a [`DeError`] on shape mismatch.
    fn deserialize(content: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                let v: i64 = match *content {
                    Content::I64(v) => v,
                    Content::U64(v) => i64::try_from(v)
                        .map_err(|_| DeError::expected("integer in range", stringify!($t)))?,
                    Content::F64(v) if v.fract() == 0.0 => v as i64,
                    _ => return Err(DeError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(v).map_err(|_| DeError::expected("integer in range", stringify!($t)))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                let v = *self as u64;
                if let Ok(i) = i64::try_from(v) { Content::I64(i) } else { Content::U64(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                let v: u64 = match *content {
                    Content::I64(v) => u64::try_from(v)
                        .map_err(|_| DeError::expected("unsigned integer", stringify!($t)))?,
                    Content::U64(v) => v,
                    Content::F64(v) if v.fract() == 0.0 && v >= 0.0 => v as u64,
                    _ => return Err(DeError::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(v).map_err(|_| DeError::expected("integer in range", stringify!($t)))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match *content {
            Content::Null => Ok(f64::NAN),
            _ => content.as_f64().ok_or_else(|| DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        f64::deserialize(content).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

// ---------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        T::deserialize(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(v) => v.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence", "Vec"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                const LEN: usize = 0 $( + { let _ = $idx; 1 } )+;
                let seq = content
                    .as_seq()
                    .ok_or_else(|| DeError::expected("sequence", "tuple"))?;
                if seq.len() != LEN {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {LEN}, got {}",
                        seq.len()
                    )));
                }
                Ok(($($name::deserialize(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Renders serialized map-key content as a JSON object key.
fn key_to_string(content: Content) -> String {
    match content {
        Content::Str(s) => s,
        Content::I64(v) => v.to_string(),
        Content::U64(v) => v.to_string(),
        Content::F64(v) => v.to_string(),
        Content::Bool(b) => b.to_string(),
        other => panic!("unsupported map key content: {other:?}"),
    }
}

/// Rebuilds a typed map key from its JSON string form: tries the string
/// directly, then integer and float reinterpretations (for newtype keys
/// like `ComponentId(u32)`).
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, DeError> {
    if let Ok(k) = K::deserialize(&Content::Str(key.to_string())) {
        return Ok(k);
    }
    if let Ok(v) = key.parse::<i64>() {
        if let Ok(k) = K::deserialize(&Content::I64(v)) {
            return Ok(k);
        }
    }
    if let Ok(v) = key.parse::<u64>() {
        if let Ok(k) = K::deserialize(&Content::U64(v)) {
            return Ok(k);
        }
    }
    if let Ok(v) = key.parse::<f64>() {
        if let Ok(k) = K::deserialize(&Content::F64(v)) {
            return Ok(k);
        }
    }
    Err(DeError::custom(format!("cannot rebuild map key from `{key}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(k.serialize()), v.serialize()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_map()
            .ok_or_else(|| DeError::expected("map", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k.serialize()), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_map()
            .ok_or_else(|| DeError::expected("map", "HashMap"))?
            .iter()
            .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence", "BTreeSet"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + std::hash::Hash + Eq,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence", "HashSet"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence", "VecDeque"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl Serialize for Content {
    fn serialize(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}
