//! Network monitoring: probing, passive goodput accounting, and path
//! estimation (the paper's net-monitor, §4.2).
//!
//! The real BASS runs an iPerf3/traceroute/eBPF daemon on every node and
//! aggregates through Prometheus. Against the simulated mesh the same
//! three signals are produced by:
//!
//! - [`probe`]: **max-capacity probes** (flood a link for one second to
//!   learn its capacity; expensive, used rarely) and **headroom probes**
//!   (send a small fraction of the link capacity to check that spare
//!   headroom exists; cheap, used every cycle), both with overhead
//!   accounting so §6.3.4's probe-cost numbers can be reproduced.
//! - [`goodput`]: passive per-edge measurement of what each component
//!   pair actually pushed versus what it required.
//! - [`profiler`]: the §8 "future work" extension — learning an edge's
//!   bandwidth requirement online from observed usage instead of offline
//!   profiling.

pub mod goodput;
pub mod probe;
pub mod profiler;

pub use goodput::{EdgeUsage, GoodputMonitor};
pub use probe::{HeadroomReport, NetMonitor, NetMonitorConfig, ProbeOverhead};
pub use profiler::OnlineProfiler;
