//! Deterministic step scripts — the `tc` of the simulated world.
//!
//! The paper's microbenchmarks shape traffic with `tc` ("we restrict the
//! bandwidth ... to 25 Mbps for 2 minutes"). [`StepScript`] expresses the
//! same thing declaratively: a base capacity plus a list of timed
//! restrictions, compiled into a [`BandwidthTrace`].

use crate::trace::BandwidthTrace;
use bass_util::time::{SimDuration, SimTime};
use bass_util::units::Bandwidth;
use serde::{Deserialize, Serialize};

/// A scripted capacity timeline: base capacity with timed overrides.
///
/// # Examples
///
/// ```
/// use bass_trace::StepScript;
/// use bass_util::prelude::*;
///
/// // Fig. 5's scenario: 1 Gbps link throttled to 25 Mbps for 2 minutes.
/// let trace = StepScript::new("n2-out", Bandwidth::from_mbps(1000.0))
///     .restrict(
///         SimTime::from_secs(60),
///         SimDuration::from_secs(120),
///         Bandwidth::from_mbps(25.0),
///     )
///     .compile(SimDuration::from_secs(300));
/// assert_eq!(trace.capacity_at(SimTime::from_secs(90)).as_mbps(), 25.0);
/// assert_eq!(trace.capacity_at(SimTime::from_secs(200)).as_mbps(), 1000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepScript {
    name: String,
    base: Bandwidth,
    steps: Vec<(SimTime, Bandwidth)>,
}

impl StepScript {
    /// Creates a script with a constant base capacity.
    pub fn new(name: impl Into<String>, base: Bandwidth) -> Self {
        StepScript {
            name: name.into(),
            base,
            steps: Vec::new(),
        }
    }

    /// Sets the capacity to `value` from `at` onward (until the next step).
    pub fn set_at(mut self, at: SimTime, value: Bandwidth) -> Self {
        self.steps.push((at, value));
        self
    }

    /// Restricts capacity to `limit` during `[start, start + duration)`,
    /// returning to the base capacity afterwards.
    pub fn restrict(self, start: SimTime, duration: SimDuration, limit: Bandwidth) -> Self {
        let base = self.base;
        self.set_at(start, limit).set_at(start + duration, base)
    }

    /// The base capacity.
    pub fn base(&self) -> Bandwidth {
        self.base
    }

    /// Compiles the script into a trace covering `[0, duration]`.
    ///
    /// Steps may be added in any order; later-added steps win ties at the
    /// same instant (matching "last `tc` command wins" semantics).
    pub fn compile(&self, duration: SimDuration) -> BandwidthTrace {
        let end = SimTime::ZERO + duration;
        let mut steps: Vec<(SimTime, usize, Bandwidth)> = self
            .steps
            .iter()
            .enumerate()
            .filter(|&(_, &(t, _))| t <= end)
            .map(|(i, &(t, b))| (t, i, b))
            .collect();
        steps.sort_by_key(|&(t, i, _)| (t, i));

        let mut trace = BandwidthTrace::new(self.name.clone());
        trace.push(SimTime::ZERO, self.base);
        let mut last_time = SimTime::ZERO;
        let mut last_value = self.base;
        for (t, _, b) in steps {
            if t == last_time {
                // Overwrite the sample at this instant: rebuild.
                let mut rebuilt = BandwidthTrace::new(self.name.clone());
                for &(st, sb) in trace.samples() {
                    if st < t {
                        rebuilt.push(st, sb);
                    }
                }
                rebuilt.push(t, b);
                trace = rebuilt;
            } else {
                trace.push(t, b);
            }
            last_time = t;
            last_value = b;
        }
        let _ = last_value;
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(x: f64) -> Bandwidth {
        Bandwidth::from_mbps(x)
    }

    #[test]
    fn restrict_window() {
        let trace = StepScript::new("l", mbps(100.0))
            .restrict(SimTime::from_secs(10), SimDuration::from_secs(180), mbps(25.0))
            .compile(SimDuration::from_secs(400));
        assert_eq!(trace.capacity_at(SimTime::from_secs(0)), mbps(100.0));
        assert_eq!(trace.capacity_at(SimTime::from_secs(9)), mbps(100.0));
        assert_eq!(trace.capacity_at(SimTime::from_secs(10)), mbps(25.0));
        assert_eq!(trace.capacity_at(SimTime::from_secs(189)), mbps(25.0));
        assert_eq!(trace.capacity_at(SimTime::from_secs(190)), mbps(100.0));
    }

    #[test]
    fn multiple_restrictions() {
        let trace = StepScript::new("l", mbps(50.0))
            .restrict(SimTime::from_secs(10), SimDuration::from_secs(10), mbps(5.0))
            .restrict(SimTime::from_secs(40), SimDuration::from_secs(10), mbps(8.0))
            .compile(SimDuration::from_secs(100));
        assert_eq!(trace.capacity_at(SimTime::from_secs(15)), mbps(5.0));
        assert_eq!(trace.capacity_at(SimTime::from_secs(30)), mbps(50.0));
        assert_eq!(trace.capacity_at(SimTime::from_secs(45)), mbps(8.0));
        assert_eq!(trace.capacity_at(SimTime::from_secs(60)), mbps(50.0));
    }

    #[test]
    fn later_step_wins_ties() {
        let trace = StepScript::new("l", mbps(10.0))
            .set_at(SimTime::from_secs(5), mbps(1.0))
            .set_at(SimTime::from_secs(5), mbps(2.0))
            .compile(SimDuration::from_secs(10));
        assert_eq!(trace.capacity_at(SimTime::from_secs(5)), mbps(2.0));
        assert_eq!(trace.capacity_at(SimTime::from_secs(4)), mbps(10.0));
    }

    #[test]
    fn steps_out_of_order_are_sorted() {
        let trace = StepScript::new("l", mbps(10.0))
            .set_at(SimTime::from_secs(8), mbps(3.0))
            .set_at(SimTime::from_secs(2), mbps(7.0))
            .compile(SimDuration::from_secs(10));
        assert_eq!(trace.capacity_at(SimTime::from_secs(3)), mbps(7.0));
        assert_eq!(trace.capacity_at(SimTime::from_secs(9)), mbps(3.0));
    }

    #[test]
    fn steps_beyond_duration_are_dropped() {
        let trace = StepScript::new("l", mbps(10.0))
            .set_at(SimTime::from_secs(500), mbps(1.0))
            .compile(SimDuration::from_secs(100));
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.capacity_at(SimTime::from_secs(99)), mbps(10.0));
    }

    #[test]
    fn plain_base_compiles_to_constant() {
        let trace = StepScript::new("l", mbps(30.0)).compile(SimDuration::from_secs(60));
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.capacity_at(SimTime::from_secs(59)), mbps(30.0));
    }
}
