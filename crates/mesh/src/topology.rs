//! Mesh topology: nodes and undirected wireless links.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// Identifier of a mesh node.
///
/// Node ids are small integers chosen by the caller (the paper numbers
/// its nodes 1–4 with node 0 hosting the control plane).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Index of a link within a [`Topology`] (dense, assigned in insertion
/// order).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct LinkId(pub usize);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// An undirected link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Lower-numbered endpoint.
    pub a: NodeId,
    /// Higher-numbered endpoint.
    pub b: NodeId,
}

impl Link {
    /// The endpoint opposite to `n`, or `None` if `n` is not an endpoint.
    pub fn other(&self, n: NodeId) -> Option<NodeId> {
        if n == self.a {
            Some(self.b)
        } else if n == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// Errors constructing or mutating a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A link referenced a node that was never added.
    UnknownNode(NodeId),
    /// Self-loops are not allowed.
    SelfLoop(NodeId),
    /// The link already exists.
    DuplicateLink(NodeId, NodeId),
    /// The node already exists.
    DuplicateNode(NodeId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::SelfLoop(n) => write!(f, "self loop at {n}"),
            TopologyError::DuplicateLink(a, b) => write!(f, "duplicate link {a}-{b}"),
            TopologyError::DuplicateNode(n) => write!(f, "duplicate node {n}"),
        }
    }
}

impl Error for TopologyError {}

/// An undirected multigraph-free mesh topology.
///
/// # Examples
///
/// ```
/// use bass_mesh::topology::{NodeId, Topology};
///
/// let mut topo = Topology::new();
/// for i in 0..3 {
///     topo.add_node(NodeId(i))?;
/// }
/// topo.add_link(NodeId(0), NodeId(1))?;
/// topo.add_link(NodeId(1), NodeId(2))?;
/// assert!(topo.is_connected());
/// # Ok::<(), bass_mesh::topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Topology {
    nodes: BTreeSet<NodeId>,
    links: Vec<Link>,
    /// `(lo, hi)` endpoint pair → link id, for O(log E) lookups.
    link_ids: BTreeMap<(NodeId, NodeId), LinkId>,
    /// Per-node adjacency, each list ascending by neighbor id. Routing
    /// walks these on every BFS/Dijkstra relaxation, so they must stay
    /// in sync with `links` (see [`Topology::index_link`]).
    adj: BTreeMap<NodeId, Vec<(NodeId, LinkId)>>,
}

// The wire format carries only `nodes` and `links` (the same shape the
// struct serialized as before the lookup indices existed); the indices
// are derived data and are rebuilt on deserialization.
impl Serialize for Topology {
    fn serialize(&self) -> serde::Content {
        serde::Content::Map(vec![
            (String::from("nodes"), Serialize::serialize(&self.nodes)),
            (String::from("links"), Serialize::serialize(&self.links)),
        ])
    }
}

impl Deserialize for Topology {
    fn deserialize(content: &serde::Content) -> Result<Self, serde::DeError> {
        let map = content
            .as_map()
            .ok_or_else(|| serde::DeError::expected("map", "Topology"))?;
        let nodes: BTreeSet<NodeId> = match serde::content_get(map, "nodes") {
            Some(c) => Deserialize::deserialize(c)?,
            None => return Err(serde::DeError::missing_field("nodes", "Topology")),
        };
        let links: Vec<Link> = match serde::content_get(map, "links") {
            Some(c) => Deserialize::deserialize(c)?,
            None => return Err(serde::DeError::missing_field("links", "Topology")),
        };
        let mut topo = Topology { nodes, ..Topology::default() };
        for n in topo.nodes.clone() {
            topo.adj.insert(n, Vec::new());
        }
        for link in links {
            topo.index_link(link.a, link.b);
        }
        Ok(topo)
    }
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Builds a fully connected topology over `n` nodes (ids `0..n`) —
    /// the shape of the paper's bridged-LAN microbenchmark clusters.
    pub fn full_mesh(n: u32) -> Self {
        let mut topo = Topology::new();
        for i in 0..n {
            topo.add_node(NodeId(i)).expect("fresh node");
        }
        for i in 0..n {
            for j in (i + 1)..n {
                topo.add_link(NodeId(i), NodeId(j)).expect("fresh link");
            }
        }
        topo
    }

    /// Adds a node.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::DuplicateNode`] if the id is taken.
    pub fn add_node(&mut self, id: NodeId) -> Result<(), TopologyError> {
        if !self.nodes.insert(id) {
            return Err(TopologyError::DuplicateNode(id));
        }
        self.adj.insert(id, Vec::new());
        Ok(())
    }

    /// Appends a (normalized) link and threads it through both lookup
    /// indices. Callers validate endpoints and uniqueness first.
    fn index_link(&mut self, a: NodeId, b: NodeId) -> LinkId {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let id = LinkId(self.links.len());
        self.links.push(Link { a: lo, b: hi });
        self.link_ids.insert((lo, hi), id);
        for (n, other) in [(lo, hi), (hi, lo)] {
            let list = self.adj.entry(n).or_default();
            let at = list.partition_point(|&(nb, _)| nb < other);
            list.insert(at, (other, id));
        }
        id
    }

    /// Adds an undirected link between two existing nodes.
    ///
    /// # Errors
    ///
    /// Returns an error for self-loops, unknown endpoints, or duplicates.
    pub fn add_link(&mut self, a: NodeId, b: NodeId) -> Result<LinkId, TopologyError> {
        if a == b {
            return Err(TopologyError::SelfLoop(a));
        }
        for &n in &[a, b] {
            if !self.nodes.contains(&n) {
                return Err(TopologyError::UnknownNode(n));
            }
        }
        if self.find_link(a, b).is_some() {
            return Err(TopologyError::DuplicateLink(a, b));
        }
        Ok(self.index_link(a, b))
    }

    /// All node ids in ascending order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// True if the node exists.
    pub fn contains_node(&self, n: NodeId) -> bool {
        self.nodes.contains(&n)
    }

    /// All links with their ids, in insertion order.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, Link)> + '_ {
        self.links.iter().enumerate().map(|(i, &l)| (LinkId(i), l))
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The link between `a` and `b` (order-insensitive), if any.
    pub fn find_link(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        self.link_ids.get(&(lo, hi)).copied()
    }

    /// The link with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn link(&self, id: LinkId) -> Link {
        self.links[id.0]
    }

    /// Neighbors of a node in ascending id order.
    pub fn neighbors(&self, n: NodeId) -> Vec<NodeId> {
        self.neighbor_links(n).iter().map(|&(nb, _)| nb).collect()
    }

    /// Neighbors of a node with the connecting link, ascending by
    /// neighbor id. The allocation-free counterpart of
    /// [`neighbors`](Self::neighbors) + [`find_link`](Self::find_link)
    /// that routing's inner loops relax over.
    pub fn neighbor_links(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        self.adj.get(&n).map_or(&[], Vec::as_slice)
    }

    /// Links incident to a node, in ascending link-id order.
    pub fn incident_links(&self, n: NodeId) -> Vec<LinkId> {
        let mut out: Vec<LinkId> =
            self.neighbor_links(n).iter().map(|&(_, lid)| lid).collect();
        out.sort_unstable();
        out
    }

    /// Builds a `width × height` grid: node `y * width + x` links to its
    /// right and down neighbors. The natural shape of a planned city-block
    /// deployment where each rooftop router only reaches its four
    /// immediate neighbors.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `height == 0`.
    pub fn grid(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "grid needs positive dimensions");
        let mut topo = Topology::new();
        for i in 0..width * height {
            topo.add_node(NodeId(i)).expect("fresh node");
        }
        for y in 0..height {
            for x in 0..width {
                let n = y * width + x;
                if x + 1 < width {
                    topo.add_link(NodeId(n), NodeId(n + 1)).expect("fresh link");
                }
                if y + 1 < height {
                    topo.add_link(NodeId(n), NodeId(n + width)).expect("fresh link");
                }
            }
        }
        topo
    }

    /// Builds a hub-and-spoke mesh: `hubs` backbone nodes (ids
    /// `0..hubs`) fully meshed with each other, plus `leaves_per_hub`
    /// leaf nodes hanging off every hub — the shape of a community mesh
    /// where a few well-placed gateways carry the backbone and houses
    /// associate to the nearest one.
    ///
    /// # Panics
    ///
    /// Panics if `hubs == 0`.
    pub fn hub_and_spoke(hubs: u32, leaves_per_hub: u32) -> Self {
        assert!(hubs > 0, "need at least one hub");
        let mut topo = Topology::new();
        for i in 0..hubs * (1 + leaves_per_hub) {
            topo.add_node(NodeId(i)).expect("fresh node");
        }
        for a in 0..hubs {
            for b in (a + 1)..hubs {
                topo.add_link(NodeId(a), NodeId(b)).expect("fresh link");
            }
        }
        for hub in 0..hubs {
            for leaf in 0..leaves_per_hub {
                let id = hubs + hub * leaves_per_hub + leaf;
                topo.add_link(NodeId(hub), NodeId(id)).expect("fresh link");
            }
        }
        topo
    }

    /// Builds a random-geometric mesh: `n` nodes dropped uniformly on the
    /// unit square, linked when within `radius` of each other — the
    /// standard generative model for organically grown community Wi-Fi
    /// deployments. Drawn deterministically from `rng`; if the radius
    /// leaves the graph partitioned, the closest pair of nodes across
    /// each partition boundary is bridged (a directional antenna link)
    /// so the result is always connected.
    ///
    /// Returns the topology together with each node's `(x, y)` position
    /// (indexed by node id), which callers can reuse for distance-based
    /// capacity assignment.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `radius` is not positive.
    pub fn random_geometric(
        n: u32,
        radius: f64,
        rng: &mut bass_util::rng::SimRng,
    ) -> (Self, Vec<(f64, f64)>) {
        assert!(n > 0, "need at least one node");
        assert!(radius > 0.0, "radius must be positive");
        let mut topo = Topology::new();
        let mut pos = Vec::with_capacity(n as usize);
        for i in 0..n {
            topo.add_node(NodeId(i)).expect("fresh node");
            pos.push((rng.next_f64(), rng.next_f64()));
        }
        let dist2 = |a: usize, b: usize| -> f64 {
            let (ax, ay) = pos[a];
            let (bx, by) = pos[b];
            (ax - bx).powi(2) + (ay - by).powi(2)
        };
        let r2 = radius * radius;
        for a in 0..n as usize {
            for b in (a + 1)..n as usize {
                if dist2(a, b) <= r2 {
                    topo.add_link(NodeId(a as u32), NodeId(b as u32)).expect("fresh link");
                }
            }
        }
        // Bridge partitions deterministically: while disconnected, link
        // the closest (component-of-node-0, rest) pair, ties broken by
        // lowest ids.
        while !topo.is_connected() {
            let mut seen = BTreeSet::new();
            let mut stack = vec![NodeId(0)];
            seen.insert(NodeId(0));
            while let Some(v) = stack.pop() {
                for nb in topo.neighbors(v) {
                    if seen.insert(nb) {
                        stack.push(nb);
                    }
                }
            }
            let mut best: Option<(f64, NodeId, NodeId)> = None;
            for a in topo.nodes().filter(|a| seen.contains(a)) {
                for b in topo.nodes().filter(|b| !seen.contains(b)) {
                    let d = dist2(a.0 as usize, b.0 as usize);
                    let better = match best {
                        None => true,
                        Some((bd, ba, bb)) => {
                            d < bd - 1e-15 || ((d - bd).abs() <= 1e-15 && (a, b) < (ba, bb))
                        }
                    };
                    if better {
                        best = Some((d, a, b));
                    }
                }
            }
            let (_, a, b) = best.expect("disconnected graph has a crossing pair");
            topo.add_link(a, b).expect("crossing pair is unlinked");
        }
        (topo, pos)
    }

    /// True when every node can reach every other node. An empty topology
    /// counts as connected.
    pub fn is_connected(&self) -> bool {
        let Some(&start) = self.nodes.iter().next() else {
            return true;
        };
        let mut seen = BTreeSet::new();
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(n) = stack.pop() {
            for nb in self.neighbors(n) {
                if seen.insert(nb) {
                    stack.push(nb);
                }
            }
        }
        seen.len() == self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut topo = Topology::new();
        topo.add_node(NodeId(1)).unwrap();
        topo.add_node(NodeId(2)).unwrap();
        topo.add_node(NodeId(3)).unwrap();
        let l = topo.add_link(NodeId(2), NodeId(1)).unwrap();
        assert_eq!(topo.link(l), Link { a: NodeId(1), b: NodeId(2) });
        assert_eq!(topo.find_link(NodeId(1), NodeId(2)), Some(l));
        assert_eq!(topo.find_link(NodeId(2), NodeId(1)), Some(l));
        assert_eq!(topo.find_link(NodeId(1), NodeId(3)), None);
        assert_eq!(topo.neighbors(NodeId(1)), vec![NodeId(2)]);
        assert_eq!(topo.node_count(), 3);
        assert_eq!(topo.link_count(), 1);
    }

    #[test]
    fn grid_shape() {
        let topo = Topology::grid(3, 2);
        assert_eq!(topo.node_count(), 6);
        // 2 rows of 2 horizontal links + 3 vertical links.
        assert_eq!(topo.link_count(), 2 * 2 + 3);
        assert!(topo.is_connected());
        // Corner node 0 has exactly right + down neighbors.
        assert_eq!(topo.neighbors(NodeId(0)), vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn hub_and_spoke_shape() {
        let topo = Topology::hub_and_spoke(3, 4);
        assert_eq!(topo.node_count(), 3 * 5);
        // Hub backbone 3 links + 12 leaf links.
        assert_eq!(topo.link_count(), 3 + 12);
        assert!(topo.is_connected());
        // Leaves have exactly one neighbor: their hub.
        assert_eq!(topo.neighbors(NodeId(3)), vec![NodeId(0)]);
        assert_eq!(topo.neighbors(NodeId(14)), vec![NodeId(2)]);
    }

    #[test]
    fn random_geometric_connected_and_deterministic() {
        let mut rng = bass_util::rng::SimRng::seed_from_u64(7);
        let (topo, pos) = Topology::random_geometric(60, 0.08, &mut rng);
        assert_eq!(topo.node_count(), 60);
        assert_eq!(pos.len(), 60);
        // Radius 0.08 on 60 nodes leaves partitions; bridging must fix them.
        assert!(topo.is_connected());
        let mut rng2 = bass_util::rng::SimRng::seed_from_u64(7);
        let (topo2, pos2) = Topology::random_geometric(60, 0.08, &mut rng2);
        assert_eq!(topo, topo2);
        assert_eq!(pos, pos2);
    }

    #[test]
    fn error_cases() {
        let mut topo = Topology::new();
        topo.add_node(NodeId(1)).unwrap();
        assert_eq!(
            topo.add_node(NodeId(1)),
            Err(TopologyError::DuplicateNode(NodeId(1)))
        );
        assert_eq!(
            topo.add_link(NodeId(1), NodeId(1)),
            Err(TopologyError::SelfLoop(NodeId(1)))
        );
        assert_eq!(
            topo.add_link(NodeId(1), NodeId(9)),
            Err(TopologyError::UnknownNode(NodeId(9)))
        );
        topo.add_node(NodeId(2)).unwrap();
        topo.add_link(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(
            topo.add_link(NodeId(2), NodeId(1)),
            Err(TopologyError::DuplicateLink(NodeId(2), NodeId(1)))
        );
    }

    #[test]
    fn full_mesh_shape() {
        let topo = Topology::full_mesh(4);
        assert_eq!(topo.node_count(), 4);
        assert_eq!(topo.link_count(), 6);
        assert!(topo.is_connected());
        assert_eq!(topo.neighbors(NodeId(0)).len(), 3);
    }

    #[test]
    fn connectivity() {
        let mut topo = Topology::new();
        assert!(topo.is_connected());
        topo.add_node(NodeId(0)).unwrap();
        topo.add_node(NodeId(1)).unwrap();
        assert!(!topo.is_connected());
        topo.add_link(NodeId(0), NodeId(1)).unwrap();
        assert!(topo.is_connected());
        topo.add_node(NodeId(2)).unwrap();
        assert!(!topo.is_connected());
    }

    #[test]
    fn incident_links() {
        let topo = Topology::full_mesh(3);
        let incident = topo.incident_links(NodeId(0));
        assert_eq!(incident.len(), 2);
    }

    #[test]
    fn link_other_endpoint() {
        let l = Link { a: NodeId(1), b: NodeId(2) };
        assert_eq!(l.other(NodeId(1)), Some(NodeId(2)));
        assert_eq!(l.other(NodeId(2)), Some(NodeId(1)));
        assert_eq!(l.other(NodeId(3)), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(2).to_string(), "l2");
    }
}
