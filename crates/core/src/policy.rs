//! Pluggable migration-decision policies (the scheduler arena).
//!
//! The BASS controller's decision cycle splits into two policy points:
//! *which components should move* (candidate filtering, Algorithm 3 by
//! default) and *where each should go* (target scoring). This module
//! extracts both behind the [`SchedulerPolicy`] trait so the paper's
//! controller becomes one implementation among several — the baseline
//! families from the orchestrator taxonomy (spread, random,
//! network-aware greedy, k3s-default) plus a Metronome-style
//! priority-aware policy — all runnable head-to-head by `bassctl arena`.
//!
//! Determinism contract (see `docs/POLICIES.md`): a policy's decisions
//! may depend only on the [`PolicyCtx`] snapshot, the synced
//! [`TargetScoreCache`], and the policy's own seeded state. Wall-clock
//! time, map iteration order over non-`BTree` maps, and global RNGs are
//! all forbidden — same-seed runs must be bit-identical, and the
//! default [`BassPolicy`] must reproduce the pre-trait controller's
//! golden journals byte-for-byte.

use crate::migration::{MigrationCandidates, MigrationConfig};
use crate::rescheduler::RescheduleError;
use crate::score_cache::TargetScoreCache;
use bass_appdag::{AppDag, ComponentId};
use bass_cluster::{Cluster, Placement};
use bass_mesh::{Mesh, NodeId};
use bass_netmon::GoodputMonitor;
use bass_util::rng::SimRng;
use bass_util::units::Bandwidth;
use std::collections::BTreeSet;

/// Read-only world snapshot handed to a policy for one decision round.
///
/// Everything a policy may legally consult lives here; the controller
/// owns the probe cadence, the cooldown clock, and the score cache.
#[derive(Debug)]
pub struct PolicyCtx<'a> {
    /// The mesh (capacities, routes, up/down state).
    pub mesh: &'a Mesh,
    /// The application DAG (components, edges, requirements).
    pub dag: &'a AppDag,
    /// The cluster (node resources and current placements).
    pub cluster: &'a Cluster,
    /// Per-edge goodput measurements.
    pub goodput: &'a GoodputMonitor,
    /// The current component→node placement snapshot.
    pub placement: &'a Placement,
    /// Components that must never migrate.
    pub pinned: &'a BTreeSet<ComponentId>,
    /// Candidate-selection thresholds (Algorithm 3 knobs).
    pub migration: MigrationConfig,
    /// Whether best-effort fallback targets are allowed.
    pub best_effort_targets: bool,
    /// Whether every cache hit is re-derived densely (debug oracle).
    pub verify_score_cache: bool,
}

/// A migration-decision policy: candidate filtering plus target
/// selection for one controller round.
///
/// Implementations must be deterministic functions of the
/// [`PolicyCtx`], the cache, and their own seeded state (see the
/// module docs). The provided [`find_candidates`](Self::find_candidates)
/// runs the paper's Algorithm 3; override it to re-rank or filter the
/// candidate list.
pub trait SchedulerPolicy: std::fmt::Debug + Send {
    /// The policy's registry name (`bassctl arena --policy <name>`).
    fn name(&self) -> &'static str;

    /// Which components should migrate this round. The default runs
    /// Algorithm 3 (utilization + degradation triggers, heaviest-first
    /// dedup) exactly as the paper's controller does.
    fn find_candidates(&mut self, ctx: &PolicyCtx<'_>) -> MigrationCandidates {
        crate::migration::find_candidates(
            ctx.dag,
            ctx.placement,
            ctx.goodput,
            ctx.mesh,
            &ctx.migration,
            ctx.pinned,
        )
    }

    /// Where `component` should move. `observed` is the worst goodput
    /// fraction among its violations; `degraded` is whether it fell
    /// below the goodput threshold. `Err` marks the component
    /// unplaceable this round.
    ///
    /// # Errors
    ///
    /// [`RescheduleError`] when no acceptable target exists.
    fn select_target(
        &mut self,
        component: ComponentId,
        observed: f64,
        degraded: bool,
        ctx: &PolicyCtx<'_>,
        cache: &mut TargetScoreCache,
    ) -> Result<NodeId, RescheduleError>;

    /// Clones the policy behind the object (controllers are `Clone`).
    fn clone_box(&self) -> Box<dyn SchedulerPolicy>;
}

impl Clone for Box<dyn SchedulerPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The policy registry: every buildable policy, by name.
///
/// `Copy` so configs carrying a kind stay `Copy`; the seeded variant
/// carries its seed in the kind, so rebuilding from a kind always
/// yields an identically-behaving instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's controller: Algorithm 3 candidates, bandwidth-scored
    /// targets with the improvement gate and best-effort fallback.
    #[default]
    Bass,
    /// Resource-only bin packing: most-free-resources node, network
    /// ignored (what vanilla k3s would do).
    K3sDefault,
    /// Fewest components per node: spread component count evenly.
    Spread,
    /// Uniformly random feasible node, from the carried seed.
    Random(u64),
    /// Pure bandwidth-score argmax, no hysteresis gate.
    NetworkAwareGreedy,
    /// Metronome-style priority-aware: heavy-traffic components are
    /// a priority class that always moves first and moves eagerly.
    Metronome,
}

/// The default seed for `random` when parsed from a CLI name.
pub const RANDOM_POLICY_SEED: u64 = 0xB455;

impl PolicyKind {
    /// Every registered policy, in the arena's canonical order.
    pub fn all() -> [PolicyKind; 6] {
        [
            PolicyKind::Bass,
            PolicyKind::K3sDefault,
            PolicyKind::Spread,
            PolicyKind::Random(RANDOM_POLICY_SEED),
            PolicyKind::NetworkAwareGreedy,
            PolicyKind::Metronome,
        ]
    }

    /// The registry name (what [`parse`](Self::parse) accepts).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Bass => "bass",
            PolicyKind::K3sDefault => "k3s-default",
            PolicyKind::Spread => "spread",
            PolicyKind::Random(_) => "random",
            PolicyKind::NetworkAwareGreedy => "network-aware-greedy",
            PolicyKind::Metronome => "metronome",
        }
    }

    /// Parses a registry name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names for anything else.
    pub fn parse(name: &str) -> Result<PolicyKind, String> {
        match name {
            "bass" => Ok(PolicyKind::Bass),
            "k3s-default" | "k3s" => Ok(PolicyKind::K3sDefault),
            "spread" => Ok(PolicyKind::Spread),
            "random" => Ok(PolicyKind::Random(RANDOM_POLICY_SEED)),
            "network-aware-greedy" | "greedy" => Ok(PolicyKind::NetworkAwareGreedy),
            "metronome" => Ok(PolicyKind::Metronome),
            other => Err(format!(
                "unknown policy '{other}' (expected bass, k3s-default, spread, random, \
                 network-aware-greedy, or metronome)"
            )),
        }
    }

    /// Builds a fresh instance of the policy.
    pub fn build(self) -> Box<dyn SchedulerPolicy> {
        match self {
            PolicyKind::Bass => Box::new(BassPolicy),
            PolicyKind::K3sDefault => Box::new(K3sDefaultPolicy),
            PolicyKind::Spread => Box::new(SpreadPolicy),
            PolicyKind::Random(seed) => Box::new(RandomPolicy::new(seed)),
            PolicyKind::NetworkAwareGreedy => Box::new(NetworkAwareGreedyPolicy),
            PolicyKind::Metronome => Box::new(MetronomePolicy::default()),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The paper's controller behaviour, verbatim: Algorithm 3 candidates
/// (the trait default) and [`select_target_with`] targets through the
/// shared cache. This path must stay bit-identical to the pre-trait
/// controller — the golden refactor-equivalence battery
/// (`tests/policy.rs`) holds it there.
///
/// [`select_target_with`]: crate::rescheduler::select_target_with
#[derive(Debug, Clone, Copy, Default)]
pub struct BassPolicy;

impl SchedulerPolicy for BassPolicy {
    fn name(&self) -> &'static str {
        "bass"
    }

    fn select_target(
        &mut self,
        component: ComponentId,
        observed: f64,
        degraded: bool,
        ctx: &PolicyCtx<'_>,
        cache: &mut TargetScoreCache,
    ) -> Result<NodeId, RescheduleError> {
        crate::rescheduler::select_target_with(
            component,
            ctx.dag,
            ctx.cluster,
            ctx.mesh,
            observed,
            degraded,
            ctx.best_effort_targets,
            Some(cache),
            ctx.verify_score_cache,
        )
    }

    fn clone_box(&self) -> Box<dyn SchedulerPolicy> {
        Box::new(*self)
    }
}

/// The feasible targets for `component`: up nodes other than its
/// current one where its CPU/memory fit, in ascending `NodeId` order.
fn feasible_targets(
    component: ComponentId,
    ctx: &PolicyCtx<'_>,
) -> Result<(NodeId, Vec<NodeId>), RescheduleError> {
    let comp = ctx
        .dag
        .component(component)
        .ok_or(RescheduleError::UnknownComponent(component))?;
    let current = ctx
        .cluster
        .node_of(component)
        .ok_or(RescheduleError::NotPlaced(component))?;
    let nodes = ctx
        .cluster
        .node_ids()
        .into_iter()
        .filter(|&n| n != current && ctx.mesh.node_is_up(n))
        .filter(|&n| ctx.cluster.fits(n, comp.resources).unwrap_or(false))
        .collect();
    Ok((current, nodes))
}

/// Resource-only packing, network-blind: the node with the most free
/// CPU (then memory, then lowest id) that fits — what a vanilla k3s
/// scheduler's least-allocated scoring would pick.
#[derive(Debug, Clone, Copy, Default)]
pub struct K3sDefaultPolicy;

impl SchedulerPolicy for K3sDefaultPolicy {
    fn name(&self) -> &'static str {
        "k3s-default"
    }

    fn select_target(
        &mut self,
        component: ComponentId,
        _observed: f64,
        _degraded: bool,
        ctx: &PolicyCtx<'_>,
        _cache: &mut TargetScoreCache,
    ) -> Result<NodeId, RescheduleError> {
        let (_, nodes) = feasible_targets(component, ctx)?;
        nodes
            .into_iter()
            .map(|n| {
                let free = ctx.cluster.free_on(n).expect("cluster node exists");
                (std::cmp::Reverse(free.cpu.as_millis()), std::cmp::Reverse(free.memory.as_mb()), n)
            })
            .min()
            .map(|(_, _, n)| n)
            .ok_or(RescheduleError::NoFeasibleNode(component))
    }

    fn clone_box(&self) -> Box<dyn SchedulerPolicy> {
        Box::new(*self)
    }
}

/// Spread: the feasible node hosting the fewest components (then most
/// free CPU, then lowest id) — even component count over the cluster.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpreadPolicy;

impl SchedulerPolicy for SpreadPolicy {
    fn name(&self) -> &'static str {
        "spread"
    }

    fn select_target(
        &mut self,
        component: ComponentId,
        _observed: f64,
        _degraded: bool,
        ctx: &PolicyCtx<'_>,
        _cache: &mut TargetScoreCache,
    ) -> Result<NodeId, RescheduleError> {
        let (_, nodes) = feasible_targets(component, ctx)?;
        nodes
            .into_iter()
            .map(|n| {
                let hosted = ctx.cluster.components_on(n).len();
                let free = ctx.cluster.free_on(n).expect("cluster node exists");
                (hosted, std::cmp::Reverse(free.cpu.as_millis()), n)
            })
            .min()
            .map(|(_, _, n)| n)
            .ok_or(RescheduleError::NoFeasibleNode(component))
    }

    fn clone_box(&self) -> Box<dyn SchedulerPolicy> {
        Box::new(*self)
    }
}

/// Uniformly random feasible target, from the policy's own seeded
/// stream. Two instances built from the same [`PolicyKind::Random`]
/// seed make identical decision sequences — the arena's "random" is a
/// reproducible baseline, not noise.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    rng: SimRng,
}

impl RandomPolicy {
    /// A random policy drawing from `seed`.
    pub fn new(seed: u64) -> Self {
        RandomPolicy { rng: SimRng::seed_from_u64(seed) }
    }
}

impl SchedulerPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn select_target(
        &mut self,
        component: ComponentId,
        _observed: f64,
        _degraded: bool,
        ctx: &PolicyCtx<'_>,
        _cache: &mut TargetScoreCache,
    ) -> Result<NodeId, RescheduleError> {
        let (_, nodes) = feasible_targets(component, ctx)?;
        if nodes.is_empty() {
            return Err(RescheduleError::NoFeasibleNode(component));
        }
        let pick = self.rng.below(nodes.len() as u64) as usize;
        Ok(nodes[pick])
    }

    fn clone_box(&self) -> Box<dyn SchedulerPolicy> {
        Box::new(self.clone())
    }
}

/// Pure network greedy: the feasible node with the best bandwidth
/// score toward the component's dependencies, no improvement gate. It
/// chases the best link state every round — strong when the network
/// genuinely moved, churn-prone when the trigger was transient (the
/// contrast the arena is built to show).
#[derive(Debug, Clone, Copy, Default)]
pub struct NetworkAwareGreedyPolicy;

impl SchedulerPolicy for NetworkAwareGreedyPolicy {
    fn name(&self) -> &'static str {
        "network-aware-greedy"
    }

    fn select_target(
        &mut self,
        component: ComponentId,
        _observed: f64,
        _degraded: bool,
        ctx: &PolicyCtx<'_>,
        cache: &mut TargetScoreCache,
    ) -> Result<NodeId, RescheduleError> {
        let (current, nodes) = feasible_targets(component, ctx)?;
        let deps = ctx.dag.neighbors(component);
        let current_score = cache.score(component, current, &deps, ctx.cluster, ctx.mesh);
        nodes
            .into_iter()
            .map(|n| (n, cache.score(component, n, &deps, ctx.cluster, ctx.mesh)))
            .filter(|&(_, s)| s > current_score)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"))
            .map(|(n, _)| n)
            .ok_or(RescheduleError::NoFeasibleNode(component))
    }

    fn clone_box(&self) -> Box<dyn SchedulerPolicy> {
        Box::new(*self)
    }
}

/// Metronome-style priority awareness: components whose heaviest
/// adjacent edge is at or above `priority_cutoff` form a priority
/// class (Metronome's periodic bulk transfers with deadlines). The
/// candidate list is re-ranked priority-first, and priority components
/// migrate eagerly (any strictly feasible target, no hysteresis) while
/// best-effort traffic keeps the BASS improvement gate.
#[derive(Debug, Clone, Copy)]
pub struct MetronomePolicy {
    /// Heaviest-adjacent-edge bandwidth at which a component counts as
    /// priority traffic.
    pub priority_cutoff: Bandwidth,
}

impl Default for MetronomePolicy {
    fn default() -> Self {
        MetronomePolicy { priority_cutoff: Bandwidth::from_mbps(5.0) }
    }
}

impl MetronomePolicy {
    fn priority(&self, component: ComponentId, dag: &AppDag) -> Bandwidth {
        dag.neighbors(component)
            .into_iter()
            .map(|(_, bw)| bw)
            .fold(Bandwidth::ZERO, Bandwidth::max)
    }
}

impl SchedulerPolicy for MetronomePolicy {
    fn name(&self) -> &'static str {
        "metronome"
    }

    fn find_candidates(&mut self, ctx: &PolicyCtx<'_>) -> MigrationCandidates {
        let mut out = crate::migration::find_candidates(
            ctx.dag,
            ctx.placement,
            ctx.goodput,
            ctx.mesh,
            &ctx.migration,
            ctx.pinned,
        );
        // Priority class first, heaviest adjacent edge descending,
        // component id as the final deterministic tie-break.
        out.to_migrate.sort_by(|&a, &b| {
            let (pa, pb) = (self.priority(a, ctx.dag), self.priority(b, ctx.dag));
            pb.as_bps()
                .partial_cmp(&pa.as_bps())
                .expect("finite bandwidths")
                .then(a.cmp(&b))
        });
        out
    }

    fn select_target(
        &mut self,
        component: ComponentId,
        observed: f64,
        degraded: bool,
        ctx: &PolicyCtx<'_>,
        cache: &mut TargetScoreCache,
    ) -> Result<NodeId, RescheduleError> {
        let eager = self.priority(component, ctx.dag) >= self.priority_cutoff;
        crate::rescheduler::select_target_with(
            component,
            ctx.dag,
            ctx.cluster,
            ctx.mesh,
            observed,
            degraded || eager,
            ctx.best_effort_targets,
            Some(cache),
            ctx.verify_score_cache,
        )
    }

    fn clone_box(&self) -> Box<dyn SchedulerPolicy> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_round_trip() {
        for kind in PolicyKind::all() {
            assert_eq!(PolicyKind::parse(kind.name()), Ok(kind));
            assert_eq!(kind.build().name(), kind.name());
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(PolicyKind::parse("k3s"), Ok(PolicyKind::K3sDefault));
        assert_eq!(PolicyKind::parse("greedy"), Ok(PolicyKind::NetworkAwareGreedy));
        let err = PolicyKind::parse("nope").unwrap_err();
        assert!(err.contains("unknown policy 'nope'"), "{err}");
        assert!(err.contains("metronome"), "{err}");
    }

    #[test]
    fn registry_covers_at_least_five_policies() {
        let names: std::collections::BTreeSet<&str> =
            PolicyKind::all().iter().map(|k| k.name()).collect();
        assert!(names.len() >= 5, "{names:?}");
    }

    #[test]
    fn default_kind_is_bass() {
        assert_eq!(PolicyKind::default(), PolicyKind::Bass);
    }
}
