//! Golden-trace regression test: a fig13-style squeeze scenario with a
//! fixed seed, whose key Recorder series are snapshotted under
//! `tests/golden/`. Catches silent behaviour drift in future PRs.
//!
//! To regenerate the snapshot after an *intentional* behaviour change:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test golden
//! ```

use bass::appdag::catalog;
use bass::apps::testbeds::lan_testbed;
use bass::apps::{ArrivalProcess, SocialNetWorkload};
use bass::core::migration::MigrationConfig;
use bass::core::{ControllerConfig, PlacementPolicy};
use bass::core::StepMode;
use bass::emu::{Recorder, Scenario, SimEnv, SimEnvConfig};
use bass::mesh::NodeId;
use bass::netmon::NetMonitorConfig;
use bass::util::time::{SimDuration, SimTime};
use bass::util::units::Bandwidth;
use serde_json::Value;

const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fig13_social_squeeze.json");

const GOLDEN_CAMPAIGN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/campaign_20node.json");

/// Relative tolerance for float comparisons: tight enough to catch real
/// behaviour drift, loose enough to survive benign reassociation of
/// float arithmetic in refactors.
const REL_TOL: f64 = 1e-6;

/// Fig. 13's shape: a social network at 400 RPS on three LAN nodes,
/// with two of the three nodes' egress throttled to 25 Mbps for 150
/// seconds. Fixed seed 13; bit-for-bit deterministic.
fn run_scenario() -> String {
    run_scenario_in(StepMode::Ticked)
}

fn run_scenario_in(step_mode: StepMode) -> String {
    let (mesh, cluster) = lan_testbed(3, 16);
    // The paper's fig13 knobs: 30 s monitoring interval, 0.5 goodput
    // threshold, utilization trigger on.
    let cfg = SimEnvConfig {
        step_mode,
        policy: PlacementPolicy::LongestPath,
        controller: ControllerConfig {
            migration: MigrationConfig {
                goodput_threshold: 0.5,
                utilization_threshold: 0.65,
                headroom_fraction: 0.2,
                use_utilization_trigger: true,
                use_degradation_trigger: true,
            },
            cooldown: SimDuration::from_secs(30),
            full_probe_on_headroom_drop: true,
            best_effort_targets: true,
            verify_score_cache: false,
        },
        netmon: NetMonitorConfig {
            headroom_fraction: 0.2,
            probe_interval: SimDuration::from_secs(30),
            ..NetMonitorConfig::default()
        },
        ..Default::default()
    };
    let mut env = SimEnv::new(mesh, cluster, catalog::social_network(400.0), cfg);
    env.deploy(&[]).expect("deploys");
    let t0 = 10u64;
    let t1 = 160u64;
    let squeeze = Bandwidth::from_mbps(25.0);
    env.set_scenario(
        Scenario::new()
            .restrict_node_egress(NodeId(0), SimTime::from_secs(t0), SimTime::from_secs(t1), squeeze)
            .restrict_node_egress(NodeId(2), SimTime::from_secs(t0), SimTime::from_secs(t1), squeeze),
    );
    let dag = env.dag().clone();
    let mut wl = SocialNetWorkload::new(&dag, 400.0, ArrivalProcess::Constant, 13);
    let mut rec = Recorder::new();
    wl.run(&mut env, SimDuration::from_secs(240), &mut rec).expect("run completes");

    // Snapshot: migration count, latency summary, the avg-latency
    // series (downsampled), and each DAG edge's final goodput share.
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"migrations\": {},\n", env.stats().migrations.len()));
    let p = rec.percentiles("latency_ms");
    out.push_str(&format!("  \"latency_p50_ms\": {},\n", p.median()));
    out.push_str(&format!("  \"latency_p99_ms\": {},\n", p.p99()));
    let series: Vec<(f64, f64)> = rec
        .series("avg_latency_ms")
        .iter()
        .map(|(t, v)| (t.as_secs_f64(), v))
        .collect();
    let stride = (series.len() / 50).max(1);
    out.push_str("  \"avg_latency_ms\": [\n");
    let kept: Vec<String> = series
        .iter()
        .step_by(stride)
        .map(|(t, v)| format!("    [{t}, {v}]"))
        .collect();
    out.push_str(&kept.join(",\n"));
    out.push_str("\n  ],\n");
    out.push_str("  \"edge_goodput_fraction\": {\n");
    let shares: Vec<String> = dag
        .edges()
        .iter()
        .filter(|e| !e.bandwidth.is_zero())
        .map(|e| {
            let frac = env.edge_achieved(e.from, e.to).as_bps() / e.bandwidth.as_bps();
            format!("    \"{}->{}\": {}", e.from, e.to, frac)
        })
        .collect();
    out.push_str(&shares.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

/// Recursively compares two parsed JSON values with a relative
/// tolerance on numbers, reporting the path of the first mismatch.
fn compare(path: &str, golden: &Value, got: &Value, diffs: &mut Vec<String>) {
    match (golden.as_f64(), got.as_f64()) {
        (Some(a), Some(b)) => {
            let scale = a.abs().max(b.abs()).max(1e-12);
            if (a - b).abs() > REL_TOL * scale {
                diffs.push(format!("{path}: golden {a} vs got {b}"));
            }
            return;
        }
        (None, None) => {}
        _ => {
            diffs.push(format!("{path}: type changed"));
            return;
        }
    }
    match (golden.as_object(), got.as_object()) {
        (Some(a), Some(b)) => {
            if a.len() != b.len() {
                diffs.push(format!("{path}: {} keys vs {}", a.len(), b.len()));
                return;
            }
            for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                if ka != kb {
                    diffs.push(format!("{path}: key {ka:?} vs {kb:?}"));
                    return;
                }
                compare(&format!("{path}.{ka}"), va, vb, diffs);
            }
            return;
        }
        (None, None) => {}
        _ => {
            diffs.push(format!("{path}: type changed"));
            return;
        }
    }
    match (golden.as_array(), got.as_array()) {
        (Some(a), Some(b)) => {
            if a.len() != b.len() {
                diffs.push(format!("{path}: {} elements vs {}", a.len(), b.len()));
                return;
            }
            for (i, (va, vb)) in a.iter().zip(b.iter()).enumerate() {
                compare(&format!("{path}[{i}]"), va, vb, diffs);
            }
        }
        _ => {
            if golden != got {
                diffs.push(format!("{path}: golden {golden:?} vs got {got:?}"));
            }
        }
    }
}

#[test]
fn fig13_style_trace_matches_golden_snapshot() {
    let current = run_scenario();
    if std::env::var("GOLDEN_UPDATE").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap())
            .expect("mkdir tests/golden");
        std::fs::write(GOLDEN_PATH, &current).expect("write golden snapshot");
        eprintln!("golden snapshot regenerated at {GOLDEN_PATH}");
        return;
    }
    let golden_text = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("missing golden snapshot {GOLDEN_PATH} ({e}); run GOLDEN_UPDATE=1 cargo test --test golden")
    });
    let golden: Value = serde_json::from_str(&golden_text).expect("golden parses");
    let got: Value = serde_json::from_str(&current).expect("snapshot parses");
    let mut diffs = Vec::new();
    compare("$", &golden, &got, &mut diffs);
    assert!(
        diffs.is_empty(),
        "trace drifted from golden snapshot (if intentional, regenerate with \
         GOLDEN_UPDATE=1 cargo test --test golden):\n{}",
        diffs.join("\n")
    );
}

/// The 20-node reference campaign (`ScenarioSpec::small_reference`,
/// shortened to a test-sized horizon): churn, fades, a mild fault
/// storm, two replicas. The full summary JSON is the snapshot.
fn run_campaign_snapshot() -> String {
    run_campaign_snapshot_in(StepMode::Ticked)
}

fn run_campaign_snapshot_in(step_mode: StepMode) -> String {
    let mut spec = bass::scenario::ScenarioSpec::small_reference();
    spec.horizon_ticks = 300;
    let opts = bass::scenario::CampaignOptions {
        jobs: 2,
        step_mode,
        ..bass::scenario::CampaignOptions::default()
    };
    bass::scenario::run_campaign_opts(&spec, 20, &opts)
        .expect("reference campaign runs")
        .summary
        .to_json()
}

#[test]
fn campaign_20node_matches_golden_snapshot() {
    let current = run_campaign_snapshot();
    if std::env::var("GOLDEN_UPDATE").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_CAMPAIGN_PATH).parent().unwrap())
            .expect("mkdir tests/golden");
        std::fs::write(GOLDEN_CAMPAIGN_PATH, &current).expect("write golden snapshot");
        eprintln!("golden snapshot regenerated at {GOLDEN_CAMPAIGN_PATH}");
        return;
    }
    let golden_text = std::fs::read_to_string(GOLDEN_CAMPAIGN_PATH).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {GOLDEN_CAMPAIGN_PATH} ({e}); run GOLDEN_UPDATE=1 \
             cargo test --test golden"
        )
    });
    let golden: Value = serde_json::from_str(&golden_text).expect("golden parses");
    let got: Value = serde_json::from_str(&current).expect("snapshot parses");
    let mut diffs = Vec::new();
    compare("$", &golden, &got, &mut diffs);
    assert!(
        diffs.is_empty(),
        "campaign drifted from golden snapshot (if intentional, regenerate with \
         GOLDEN_UPDATE=1 cargo test --test golden):\n{}",
        diffs.join("\n")
    );
}

/// The event-driven arm of the fig13 snapshot: tick-skipping must
/// replay the *same* golden bytes — no separate snapshot exists, and
/// `GOLDEN_UPDATE` deliberately never writes from this arm.
#[test]
fn fig13_event_driven_replays_the_same_golden() {
    let event = run_scenario_in(StepMode::EventDriven);
    assert_eq!(
        run_scenario(),
        event,
        "event-driven fig13 run must be byte-identical to ticked mode"
    );
    if std::env::var("GOLDEN_UPDATE").is_ok() {
        return; // the ticked arm owns regeneration
    }
    let golden_text = std::fs::read_to_string(GOLDEN_PATH).expect("golden snapshot present");
    let golden: Value = serde_json::from_str(&golden_text).expect("golden parses");
    let got: Value = serde_json::from_str(&event).expect("snapshot parses");
    let mut diffs = Vec::new();
    compare("$", &golden, &got, &mut diffs);
    assert!(diffs.is_empty(), "event-driven fig13 drifted from golden:\n{}", diffs.join("\n"));
}

/// The event-driven arm of the 20-node campaign snapshot — same golden
/// file, bit-for-bit.
#[test]
fn campaign_20node_event_driven_replays_the_same_golden() {
    let event = run_campaign_snapshot_in(StepMode::EventDriven);
    assert_eq!(
        run_campaign_snapshot(),
        event,
        "event-driven campaign must be byte-identical to ticked mode"
    );
    if std::env::var("GOLDEN_UPDATE").is_ok() {
        return; // the ticked arm owns regeneration
    }
    let golden_text =
        std::fs::read_to_string(GOLDEN_CAMPAIGN_PATH).expect("golden snapshot present");
    let golden: Value = serde_json::from_str(&golden_text).expect("golden parses");
    let got: Value = serde_json::from_str(&event).expect("snapshot parses");
    let mut diffs = Vec::new();
    compare("$", &golden, &got, &mut diffs);
    assert!(diffs.is_empty(), "event-driven campaign drifted from golden:\n{}", diffs.join("\n"));
}

#[test]
fn golden_campaign_exercised_the_control_loop() {
    // Same tripwire idea as the fig13 snapshot: the campaign must keep
    // admitting apps and migrating under churn, or the snapshot guards
    // nothing.
    let golden_text =
        std::fs::read_to_string(GOLDEN_CAMPAIGN_PATH).expect("golden snapshot present");
    let golden: Value = serde_json::from_str(&golden_text).expect("golden parses");
    assert!(golden["aggregate"]["apps_admitted"].as_f64().expect("admissions") >= 2.0);
    assert!(golden["aggregate"]["goodput"]["samples"].as_f64().expect("samples") > 0.0);
}

#[test]
fn golden_scenario_migrated_under_the_squeeze() {
    // The snapshot is only a useful tripwire if the scenario actually
    // exercises the control loop; guard against it degenerating into a
    // quiet run.
    let golden_text = std::fs::read_to_string(GOLDEN_PATH).expect("golden snapshot present");
    let golden: Value = serde_json::from_str(&golden_text).expect("golden parses");
    assert!(golden["migrations"].as_f64().expect("migration count") >= 1.0);
}
