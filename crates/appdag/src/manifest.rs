//! Deployment manifests: the serializable form of an application DAG.
//!
//! The paper attaches bandwidth requirements "to the metadata section of
//! the application's deployment file" (§5). [`Manifest`] is the JSON
//! equivalent: a flat, human-editable description that converts to and
//! from [`AppDag`].

use crate::component::{Component, ComponentId, ResourceReq};
use crate::dag::{AppDag, DagError};
use bass_util::units::{Bandwidth, MemoryMb, Millicores};
use serde::{Deserialize, Serialize};

/// One component entry in a manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestComponent {
    /// Component name; must be unique within the manifest.
    pub name: String,
    /// CPU request in millicores.
    pub cpu_millis: u64,
    /// Memory request in MB.
    pub memory_mb: u64,
}

/// One bandwidth requirement between two named components.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestEdge {
    /// Producing component name.
    pub from: String,
    /// Consuming component name.
    pub to: String,
    /// Maximum bandwidth requirement in Mbps.
    pub bandwidth_mbps: f64,
}

/// A deployable application description.
///
/// # Examples
///
/// ```
/// use bass_appdag::Manifest;
///
/// let json = r#"{
///   "app": "demo",
///   "components": [
///     {"name": "a", "cpu_millis": 500, "memory_mb": 128},
///     {"name": "b", "cpu_millis": 500, "memory_mb": 128}
///   ],
///   "edges": [{"from": "a", "to": "b", "bandwidth_mbps": 8.0}]
/// }"#;
/// let manifest: Manifest = serde_json::from_str(json)?;
/// let dag = manifest.to_dag()?;
/// assert_eq!(dag.component_count(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Application name.
    pub app: String,
    /// Components in id order (ids are assigned 1..n on conversion).
    pub components: Vec<ManifestComponent>,
    /// Bandwidth requirements.
    pub edges: Vec<ManifestEdge>,
}

/// Errors converting a manifest to a DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// An edge referenced a component name not present in the manifest.
    UnknownName(String),
    /// The underlying graph was invalid.
    Dag(DagError),
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::UnknownName(n) => write!(f, "edge references unknown component '{n}'"),
            ManifestError::Dag(e) => write!(f, "invalid component graph: {e}"),
        }
    }
}

impl std::error::Error for ManifestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ManifestError::Dag(e) => Some(e),
            ManifestError::UnknownName(_) => None,
        }
    }
}

impl From<DagError> for ManifestError {
    fn from(e: DagError) -> Self {
        ManifestError::Dag(e)
    }
}

impl Manifest {
    /// Builds a manifest from a DAG (component ids become positions).
    pub fn from_dag(dag: &AppDag) -> Self {
        let components: Vec<ManifestComponent> = dag
            .components()
            .map(|c| ManifestComponent {
                name: c.name.clone(),
                cpu_millis: c.resources.cpu.as_millis(),
                memory_mb: c.resources.memory.as_mb(),
            })
            .collect();
        let edges = dag
            .edges()
            .iter()
            .map(|e| ManifestEdge {
                from: dag.component(e.from).expect("edge validated").name.clone(),
                to: dag.component(e.to).expect("edge validated").name.clone(),
                bandwidth_mbps: e.bandwidth.as_mbps(),
            })
            .collect();
        Manifest {
            app: dag.name().to_owned(),
            components,
            edges,
        }
    }

    /// Converts the manifest into a validated [`AppDag`]; components get
    /// ids `1..=n` in listed order.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown edge endpoints, duplicate names
    /// (which surface as duplicate edges/components), or cycles.
    pub fn to_dag(&self) -> Result<AppDag, ManifestError> {
        let mut dag = AppDag::new(self.app.clone());
        for (i, mc) in self.components.iter().enumerate() {
            dag.add_component(Component::new(
                ComponentId(i as u32 + 1),
                mc.name.clone(),
                ResourceReq::new(
                    Millicores::from_millis(mc.cpu_millis),
                    MemoryMb::from_mb(mc.memory_mb),
                ),
            ))?;
        }
        for e in &self.edges {
            let from = dag
                .component_by_name(&e.from)
                .ok_or_else(|| ManifestError::UnknownName(e.from.clone()))?
                .id;
            let to = dag
                .component_by_name(&e.to)
                .ok_or_else(|| ManifestError::UnknownName(e.to.clone()))?
                .id;
            dag.add_edge(from, to, Bandwidth::from_mbps(e.bandwidth_mbps))?;
        }
        Ok(dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn roundtrip_through_manifest() {
        let dag = catalog::camera_pipeline();
        let manifest = Manifest::from_dag(&dag);
        let back = manifest.to_dag().unwrap();
        assert_eq!(back.component_count(), dag.component_count());
        assert_eq!(back.edge_count(), dag.edge_count());
        // Bandwidths survive.
        for e in dag.edges() {
            let from = dag.component(e.from).unwrap().name.clone();
            let to = dag.component(e.to).unwrap().name.clone();
            let bf = back.component_by_name(&from).unwrap().id;
            let bt = back.component_by_name(&to).unwrap().id;
            assert!((back.bandwidth_between(bf, bt).as_mbps() - e.bandwidth.as_mbps()).abs() < 1e-9);
        }
    }

    #[test]
    fn json_roundtrip() {
        let manifest = Manifest::from_dag(&catalog::social_network(50.0));
        let json = serde_json::to_string_pretty(&manifest).unwrap();
        let back: Manifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.app, manifest.app);
        assert_eq!(back.components, manifest.components);
        assert_eq!(back.components.len(), 27);
        // Edge bandwidths survive up to float-printing precision.
        assert_eq!(back.edges.len(), manifest.edges.len());
        for (a, b) in back.edges.iter().zip(&manifest.edges) {
            assert_eq!(a.from, b.from);
            assert_eq!(a.to, b.to);
            assert!((a.bandwidth_mbps - b.bandwidth_mbps).abs() < 1e-9);
        }
    }

    #[test]
    fn unknown_edge_name_rejected() {
        let manifest = Manifest {
            app: "x".into(),
            components: vec![ManifestComponent {
                name: "a".into(),
                cpu_millis: 100,
                memory_mb: 64,
            }],
            edges: vec![ManifestEdge {
                from: "a".into(),
                to: "ghost".into(),
                bandwidth_mbps: 1.0,
            }],
        };
        assert_eq!(
            manifest.to_dag().unwrap_err(),
            ManifestError::UnknownName("ghost".into())
        );
    }

    #[test]
    fn cyclic_manifest_rejected() {
        let mk = |n: &str| ManifestComponent {
            name: n.into(),
            cpu_millis: 100,
            memory_mb: 64,
        };
        let edge = |f: &str, t: &str| ManifestEdge {
            from: f.into(),
            to: t.into(),
            bandwidth_mbps: 1.0,
        };
        let manifest = Manifest {
            app: "cyc".into(),
            components: vec![mk("a"), mk("b")],
            edges: vec![edge("a", "b"), edge("b", "a")],
        };
        assert!(matches!(
            manifest.to_dag().unwrap_err(),
            ManifestError::Dag(DagError::Cycle)
        ));
    }
}
