//! Automated migration-threshold tuning (the paper's §8 future work):
//! coordinate-descent over (utilization threshold, headroom) driven by
//! measured upper-quartile latency of the social network on the
//! CityLab-like mesh.
//!
//! ```text
//! cargo run --release --example threshold_tuning
//! ```

use bass::apps::testbeds::citylab_testbed;
use bass::apps::{ArrivalProcess, SocialNetWorkload};
use bass::appdag::catalog;
use bass::core::tuning::{tune, TuningGrid, TuningPoint};
use bass::core::PlacementPolicy;
use bass::emu::{Recorder, SimEnv, SimEnvConfig};
use bass::util::time::SimDuration;

fn evaluate(point: TuningPoint) -> f64 {
    let duration = SimDuration::from_secs(600);
    let (mesh, cluster, _) = citylab_testbed(1450, duration + SimDuration::from_secs(60));
    let mut cfg = SimEnvConfig {
        policy: PlacementPolicy::LongestPath,
        ..Default::default()
    };
    cfg.controller.migration.utilization_threshold = point.threshold;
    cfg.controller.migration.goodput_threshold = point.threshold.min(0.5);
    cfg.controller.migration.headroom_fraction = point.headroom;
    cfg.netmon.headroom_fraction = point.headroom;
    let mut env = SimEnv::new(mesh, cluster, catalog::social_network(50.0), cfg);
    env.deploy(&[]).expect("deploys");
    let mut workload =
        SocialNetWorkload::new(&env.dag().clone(), 50.0, ArrivalProcess::Constant, 1450);
    let mut rec = Recorder::new();
    workload
        .run(&mut env, duration, &mut rec)
        .expect("run completes");
    rec.percentiles("latency_ms").upper_quartile()
}

fn main() {
    println!("tuning (threshold, headroom) for the social network…\n");
    let grid = TuningGrid::default();
    let result = tune(&grid, evaluate);
    println!("{:>10} {:>9} {:>18}", "threshold", "headroom", "upper quartile ms");
    for (point, cost) in &result.evaluated {
        let marker = if *point == result.best { "  <- best" } else { "" };
        println!(
            "{:>10.2} {:>9.2} {:>18.1}{marker}",
            point.threshold, point.headroom, cost
        );
    }
    println!(
        "\nbest: threshold {:.2}, headroom {:.2} ({:.1} ms upper quartile, {} evaluations)",
        result.best.threshold,
        result.best.headroom,
        result.best_cost,
        result.evaluated.len()
    );
}
