//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use std::ops::Range;

/// Generates values of `Self::Value` from a deterministic RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_unit() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64 + rng.next_unit() * (self.end - self.start) as f64) as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
}

/// A constant strategy (always yields clones of one value).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies — what `prop_oneof!`
/// builds. Real proptest supports per-variant weights; the tests in this
/// workspace only use the unweighted form.
pub struct Union<V> {
    variants: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union from boxed variants (via [`boxed`]).
    ///
    /// # Panics
    ///
    /// Panics when `variants` is empty.
    pub fn from_variants(variants: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
        Union { variants }
    }
}

/// Type-erases a strategy so [`Union`] can hold heterogeneous variants.
pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.variants.len() as u64) as usize;
        self.variants[i].generate(rng)
    }
}
