//! The [`Mesh`] facade: topology + routing + capacities + flows + queues.
//!
//! Each [`Mesh::advance`] tick runs the allocation pipeline described in
//! `docs/ARCHITECTURE.md`: refresh per-link capacities from traces and
//! overrides, rebuild the flow↔constraint `AllocIndex` if topology or
//! membership changed, water-fill per-flow rates, then drain per-flow
//! queues against the granted rates. Three [`AllocEngine`]s implement
//! the water-fill step with bit-identical results:
//!
//! - **Dense** — the reference path: rebuilds all state from scratch
//!   every tick. Slow, trivially correct; the oracle the other two are
//!   tested against.
//! - **Incremental** — keeps the `AllocIndex` (a CSR flow↔constraint
//!   map) across ticks and refills everything through preallocated
//!   scratch. No per-tick allocation, but still a full refill.
//! - **Delta** — additionally tracks connected components of the
//!   flow↔constraint graph ([`crate::flow::ComponentIndex`]) and
//!   bit-compares capacity/demand snapshots each tick, refilling only
//!   the *dirty* components. With `alloc_jobs > 1` dirty components are
//!   sharded across scoped worker threads; per-worker rate buffers are
//!   scattered back in canonical component order, so results stay
//!   byte-identical at any job count.
//!
//! Determinism rules: component order is canonical (ascending smallest
//! constraint index), all engine state is rebuilt from the same inputs,
//! and nothing samples wall-clock time — the same seed and mutation
//! sequence replays bit-for-bit on any machine and any `alloc_jobs`.

use crate::capacity::{CapacitySource, LinkCapacity};
use crate::flow::{
    build_flow_constraint_map, max_min_allocate_components, max_min_allocate_dense,
    max_min_allocate_into, refill_component_into, unconstrained_rate, AllocScratch,
    ComponentIndex, Constraint, FlowAllocation, FlowId, FlowSpec, NO_COMPONENT,
};
use crate::queueing::{FlowQueue, HopLatency};
use crate::routing::RoutingTable;
use crate::topology::{LinkId, NodeId, Topology};
use bass_trace::TraceBundle;
use bass_util::time::{SimDuration, SimTime};
use bass_util::units::{Bandwidth, DataSize};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// Errors returned by [`Mesh`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// The referenced node does not exist.
    UnknownNode(NodeId),
    /// No link exists between the two nodes.
    UnknownLink(NodeId, NodeId),
    /// No route exists between the two nodes.
    Unreachable(NodeId, NodeId),
    /// The referenced flow does not exist.
    UnknownFlow(FlowId),
    /// The topology is not connected (BASS assumes no partitions).
    NotConnected,
    /// A trace bundle is missing a trace for a link.
    MissingTrace(String),
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::UnknownNode(n) => write!(f, "unknown node {n}"),
            MeshError::UnknownLink(a, b) => write!(f, "no link between {a} and {b}"),
            MeshError::Unreachable(a, b) => write!(f, "no route from {a} to {b}"),
            MeshError::UnknownFlow(id) => write!(f, "unknown flow {id}"),
            MeshError::NotConnected => write!(f, "topology is not connected"),
            MeshError::MissingTrace(k) => write!(f, "trace bundle has no trace for link {k}"),
        }
    }
}

impl Error for MeshError {}

/// Selects the algorithm behind [`Mesh::reallocate`].
///
/// All three engines compute the identical allocation — bit-for-bit,
/// not merely numerically close — so switching engines never changes
/// simulation behaviour, only its cost (the equivalence contract is
/// spelled out in `docs/ARCHITECTURE.md`). `Dense` is retained as the
/// regression oracle and as the baseline the `scale` bench measures the
/// other engines against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocEngine {
    /// The pre-incremental reference path: rebuilds every link's member
    /// list by scanning all flows on every tick
    /// (O(links × flows × path-len)) and runs the dense water-filling
    /// oracle, allocating fresh buffers throughout.
    Dense,
    /// The default: a persistent link → members inverted index (rebuilt
    /// only when flows or routes change) feeding the in-place
    /// incremental allocator, with all scratch buffers reused across
    /// ticks. Every constraint component is still refilled every tick.
    #[default]
    Incremental,
    /// Delta recomputation: everything `Incremental` does, plus a cached
    /// [`crate::flow::ComponentIndex`] over the
    /// flow ↔ constraint graph and bit-compare snapshots of constraint
    /// capacities and per-flow transmit demands. A tick refills only the
    /// components an observed change touches; untouched components keep
    /// their previous rates verbatim. Dirty components are fanned out
    /// across worker threads when [`Mesh::set_alloc_jobs`] raises the
    /// job count — outputs stay byte-identical at any job count.
    Delta,
}

/// Persistent inverted index backing [`AllocEngine::Incremental`]:
/// the dense flow ordering, one constraint per link (and per
/// egress-capped node) with its member list, and a CSR flow →
/// constraints reverse map. Rebuilt only when the flow set, the routing,
/// or the egress-cap set changes — never on the steady-state tick path.
#[derive(Debug, Clone, Default)]
struct AllocIndex {
    /// Flow ids in ascending order; constraint `members` index into this.
    ids: Vec<FlowId>,
    /// Link constraints first (one per link, in `LinkId` order), then one
    /// per egress-capped node (in `NodeId` order) — the same layout the
    /// dense path rebuilds per tick. Capacities are refreshed in place
    /// each [`Mesh::reallocate`]; member lists persist.
    constraints: Vec<Constraint>,
    /// Nodes of the egress constraints, aligned with
    /// `constraints[link_count..]`.
    egress_nodes: Vec<NodeId>,
    /// CSR offsets of the flow → constraints reverse map.
    flow_cons_off: Vec<usize>,
    /// CSR payload of the flow → constraints reverse map.
    flow_cons: Vec<usize>,
    /// Connected components of the flow ↔ constraint graph, cached for
    /// the delta engine (the district map of a gateway-partitioned city
    /// mesh). Rebuilt together with the membership lists.
    comps: ComponentIndex,
    /// CSR offsets of the flow-slot → egress-nodes map (every path node
    /// except the destination, whether egress-capped or not) backing the
    /// O(dirty) usage-view update.
    flow_egr_off: Vec<usize>,
    /// CSR payload of the flow-slot → egress-nodes map.
    flow_egr: Vec<u32>,
    /// CSR offsets (indexed by node id, length `max_node + 1`) of the
    /// node → consuming-flow-slots reverse map.
    egr_members_off: Vec<usize>,
    /// CSR payload of the reverse map; slots ascend within each node, so
    /// a partial egress re-sum accumulates in the same order as the
    /// full flow-major pass.
    egr_members: Vec<usize>,
    /// Set whenever membership may have changed; cleared by `rebuild`.
    dirty: bool,
}

impl AllocIndex {
    /// One pass over every flow's path (O(Σ path lengths)) rebuilding the
    /// member lists and the CSR reverse map — replacing the per-tick
    /// all-flows scan per link the dense path performs.
    fn rebuild(
        &mut self,
        link_count: usize,
        flows: &BTreeMap<FlowId, FlowState>,
        egress_caps: &BTreeMap<NodeId, Bandwidth>,
        max_node: usize,
    ) {
        self.ids.clear();
        self.constraints.clear();
        self.constraints.resize_with(link_count + egress_caps.len(), || Constraint {
            capacity: Bandwidth::ZERO,
            members: Vec::new(),
        });
        self.egress_nodes.clear();
        self.egress_nodes.extend(egress_caps.keys().copied());
        for (i, f) in flows.values().enumerate() {
            for lid in &f.links {
                self.constraints[lid.0].members.push(i);
            }
            for node in &f.egress {
                if let Ok(k) = self.egress_nodes.binary_search(node) {
                    self.constraints[link_count + k].members.push(i);
                }
            }
        }
        self.ids.extend(flows.keys().copied());
        build_flow_constraint_map(
            self.ids.len(),
            &self.constraints,
            &mut self.flow_cons_off,
            &mut self.flow_cons,
        );
        self.comps.rebuild(
            self.ids.len(),
            &self.constraints,
            &self.flow_cons_off,
            &self.flow_cons,
        );
        // Egress CSRs for the O(dirty) usage-view update: forward
        // (flow slot → path nodes consuming egress) and reverse
        // (node → consuming flow slots, ascending).
        self.flow_egr_off.clear();
        self.flow_egr_off.push(0);
        self.flow_egr.clear();
        for f in flows.values() {
            for node in &f.egress {
                self.flow_egr.push(node.0);
            }
            self.flow_egr_off.push(self.flow_egr.len());
        }
        self.egr_members_off.clear();
        self.egr_members_off.resize(max_node + 1, 0);
        for &n in &self.flow_egr {
            self.egr_members_off[n as usize + 1] += 1;
        }
        for k in 1..self.egr_members_off.len() {
            self.egr_members_off[k] += self.egr_members_off[k - 1];
        }
        self.egr_members.clear();
        self.egr_members.resize(self.flow_egr.len(), 0);
        let mut cursor = self.egr_members_off.clone();
        for (i, f) in flows.values().enumerate() {
            for node in &f.egress {
                let c = &mut cursor[node.0 as usize];
                self.egr_members[*c] = i;
                *c += 1;
            }
        }
        self.dirty = false;
    }
}

#[derive(Debug, Clone)]
struct FlowState {
    spec: FlowSpec,
    /// Links crossed by the flow's route (empty for loopback).
    links: Vec<LinkId>,
    /// Nodes whose egress the flow consumes (every path node except dst).
    egress: Vec<NodeId>,
    queue: FlowQueue,
    /// False while no usable route exists (endpoint down or the mesh
    /// partitioned by link faults): the flow gets zero allocation until
    /// connectivity returns and [`Mesh::recompute_routes_and_flows`]
    /// restores its path.
    routable: bool,
}

/// A simulated wireless mesh carrying fluid flows.
///
/// Time advances with [`Mesh::advance`]; at each step the mesh refreshes
/// link capacities from their sources, recomputes the max-min fair
/// allocation across all registered flows, and integrates per-flow
/// queues.
///
/// # Examples
///
/// ```
/// use bass_mesh::{Mesh, NodeId, Topology};
/// use bass_util::prelude::*;
///
/// let topo = Topology::full_mesh(3);
/// let mut mesh = Mesh::with_uniform_capacity(topo, Bandwidth::from_mbps(100.0))?;
/// let flow = mesh.add_flow(NodeId(0), NodeId(1), Bandwidth::from_mbps(40.0))?;
/// mesh.advance(SimDuration::from_millis(100));
/// assert_eq!(mesh.flow_rate(flow).as_mbps(), 40.0);
/// # Ok::<(), bass_mesh::MeshError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mesh {
    topo: Topology,
    routes: RoutingTable,
    link_caps: Vec<LinkCapacity>,
    egress_caps: BTreeMap<NodeId, Bandwidth>,
    flows: BTreeMap<FlowId, FlowState>,
    next_flow: u64,
    now: SimTime,
    hop_latency: HopLatency,
    allocation: FlowAllocation,
    /// Allocated bps currently crossing each link (refreshed per step).
    link_used_bps: Vec<f64>,
    /// Allocated bps currently leaving each node, indexed by node id
    /// (refreshed per step; zero-filled past the populated range).
    egress_used_bps: Vec<f64>,
    /// Per-link effective capacities (Mbps) last reported to a journal;
    /// `None` until the first (silent, baseline-setting) emission pass.
    obs_cap_snapshot: Option<Vec<f64>>,
    /// (flows, demand Mbps, allocated Mbps) last reported to a journal.
    obs_flow_sig: Option<(u32, f64, f64)>,
    /// Nodes currently crashed (fault injection): all incident links are
    /// unusable and the node's loopback traffic is dead.
    down_nodes: BTreeSet<NodeId>,
    /// Links currently down (fault injection), independent of node state.
    down_links: BTreeSet<LinkId>,
    /// Links whose trace feed is frozen at a past instant (fault
    /// injection): capacity reads use the frozen time, not `now`.
    trace_freeze: BTreeMap<LinkId, SimTime>,
    /// Memoized `(from, next)` result of the last
    /// [`next_trace_change_after`](Self::next_trace_change_after) scan;
    /// cleared whenever a trace source is swapped or (un)frozen.
    trace_change_cache: std::cell::Cell<Option<(SimTime, Option<SimTime>)>>,
    /// Per-link weights of the last `use_weighted_routing` call, kept so
    /// fault-driven route recomputations stay quality-aware.
    last_weights: Option<Vec<f64>>,
    /// Which allocation engine `reallocate` dispatches to.
    engine: AllocEngine,
    /// Persistent membership index for the incremental engine.
    index: AllocIndex,
    /// Reusable working state of the incremental allocator.
    scratch: AllocScratch,
    /// Per-flow demand vector, reused across ticks.
    demands_scratch: Vec<Bandwidth>,
    /// Per-flow allocated bps from the last allocation, reused across
    /// ticks.
    rates_bps: Vec<f64>,
    /// Effective per-link capacities (bps) cached by the last
    /// `reallocate` — `advance` derives utilizations from these without
    /// re-querying every capacity source.
    link_cap_bps: Vec<f64>,
    /// Per-link utilization scratch for the queueing model.
    util_scratch: Vec<f64>,
    /// Worker threads for the delta engine's sharded component fill
    /// (1 = fill dirty components serially on the calling thread).
    alloc_jobs: usize,
    /// True while the delta engine's `prev_*` snapshots and `rates_bps`
    /// describe the current flow set; cleared by index rebuilds and
    /// engine switches to force a full canonical fill.
    delta_valid: bool,
    /// Constraint capacities (bps) as of the last delta allocation,
    /// aligned with `index.constraints`.
    prev_caps_bps: Vec<f64>,
    /// Per-flow transmit demands (bps) as of the last delta allocation.
    prev_demands_bps: Vec<f64>,
    /// Components marked dirty this tick (delta engine scratch).
    dirty_comps: Vec<u32>,
    /// Per-component dirty flags (delta engine scratch).
    comp_dirty: Vec<bool>,
    /// Persistent worker threads (plus their owned scratch and rate
    /// buffers) for sharded fills. Spawned lazily on the first sharded
    /// tick and reused for every one after — the per-tick
    /// `thread::scope` spawn/join cost is what made sharding *lose* to
    /// the serial fill at 1000 nodes before the pool. Cloning a mesh
    /// yields an empty pool that respawns on first use.
    shard_pool: ShardPool,
    /// Largest node id + 1 — the length of dense per-node views.
    /// Topology is immutable after construction, so this never changes
    /// (hoisted out of the per-tick usage-view update).
    max_node: usize,
    /// Master switch for the O(dirty) tick pipeline (default on; see
    /// [`Mesh::set_dirty_tracking`]). Off = the full-scan refreshes the
    /// engines ran before dirty tracking existed — bit-identical
    /// allocations, just O(F + L) per tick.
    dirty_tracking: bool,
    /// True while `link_cap_bps` and the index's link-constraint
    /// capacities are current for every link *not* in `dirty_links`.
    caps_valid: bool,
    /// Per-link membership flags of `dirty_links`.
    link_dirty: Vec<bool>,
    /// Links whose effective capacity may have moved since the last
    /// refresh: trace change-points popped from `trace_heap`, plus
    /// cap/source/freeze mutations.
    dirty_links: Vec<u32>,
    /// Links whose effective capacity *actually* moved in the last
    /// refresh — the O(dirty) input of the delta engine's diff scan.
    cap_changed: Vec<u32>,
    /// Min-heap of upcoming trace change-points `(time, link)` across
    /// live (unfrozen) traced links; each pop marks the link
    /// capacity-dirty and re-pushes the link's next change.
    trace_heap: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u32)>>,
    /// False when `trace_heap` must be rebuilt (trace source swapped,
    /// link (un)frozen, or never built).
    trace_heap_valid: bool,
    /// True while `demands_scratch` is current for every flow slot *not*
    /// in `dirty_flows`.
    demands_valid: bool,
    /// Per-flow-slot membership flags of `dirty_flows`.
    flow_dirty: Vec<bool>,
    /// Flow slots whose transmit demand may have moved since the last
    /// refresh: spec changes, queue-backlog byte movements, resets.
    dirty_flows: Vec<u32>,
    /// Monotone counter of observed capacity moves (see
    /// [`Mesh::capacity_changes_since`]).
    cap_epoch: u64,
    /// Recent capacity moves `(epoch, link)` with strictly increasing
    /// epochs, consumed by the controller's score cache; reset (with
    /// `cap_log_floor` advanced) when it would exceed `CAP_LOG_LIMIT`.
    cap_log: Vec<(u64, u32)>,
    /// Epoch at or below which `cap_log` history has been discarded.
    cap_log_floor: u64,
    /// Bumped whenever routing, up/down state, or the egress-cap set
    /// changes — controller score inputs the capacity log cannot
    /// express.
    routes_epoch: u64,
    /// True when the next queue pass must run the full O(F + L) path
    /// (allocation reshaped, usage views rebuilt, tracking disabled or
    /// its bookkeeping overflowed).
    pending_full: bool,
    /// Per-link membership flags of `pending_links`.
    pending_link_flag: Vec<bool>,
    /// Links whose utilization must be re-derived at the next queue
    /// pass (capacity or usage moved since the last pass).
    pending_links: Vec<u32>,
    /// Per-flow-slot membership flags of `pending_flows`.
    pending_flow_flag: Vec<bool>,
    /// Flow slots whose rate or demand moved since the last queue pass —
    /// the candidates for (re)activation.
    pending_flows: Vec<u32>,
    /// Per-flow-slot membership flags of `active_flows`.
    flow_active: Vec<bool>,
    /// Flow slots whose queue integration is not the identity: nonzero
    /// backlog, or offered demand above the allocated rate.
    active_flows: Vec<u32>,
    /// Per-flow-slot scratch flags of `rho_list`.
    rho_flag: Vec<bool>,
    /// Flow slots whose path utilization must be re-pushed this pass
    /// (they cross a link whose utilization moved).
    rho_list: Vec<u32>,
    /// Per-node scratch flags of `touched_nodes`.
    node_flag: Vec<bool>,
    /// Nodes whose egress usage must be re-summed this update.
    touched_nodes: Vec<u32>,
    /// Partial usage-view updates between drift audits (0 disables; see
    /// [`Mesh::set_usage_check_every`]).
    usage_check_every: u64,
    /// Partial usage-view updates since the last drift audit.
    usage_ticks: u64,
    /// Times the drift audit found a divergence and rebuilt the views
    /// (see [`Mesh::usage_view_rebuilds`]).
    usage_view_rebuilds: u64,
}

/// Upper bound on retained capacity-log entries; past this the log
/// resets and [`Mesh::capacity_changes_since`] readers fall back to a
/// full rescore.
const CAP_LOG_LIMIT: usize = 16_384;

impl Mesh {
    /// Creates a mesh over a connected topology; every link starts with
    /// zero capacity until a source is assigned.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::NotConnected`] for disconnected topologies —
    /// the paper's assumption is "no partitioning of the network".
    pub fn new(topo: Topology) -> Result<Self, MeshError> {
        if !topo.is_connected() {
            return Err(MeshError::NotConnected);
        }
        let routes = RoutingTable::compute(&topo);
        let link_caps = (0..topo.link_count())
            .map(|_| LinkCapacity::new(CapacitySource::Constant(Bandwidth::ZERO)))
            .collect();
        let link_count = topo.link_count();
        let max_node = topo.nodes().map(|n| n.0 as usize + 1).max().unwrap_or(0);
        Ok(Mesh {
            topo,
            routes,
            link_caps,
            egress_caps: BTreeMap::new(),
            flows: BTreeMap::new(),
            next_flow: 0,
            now: SimTime::ZERO,
            hop_latency: HopLatency::default(),
            allocation: FlowAllocation::default(),
            link_used_bps: vec![0.0; link_count],
            egress_used_bps: vec![0.0; max_node],
            obs_cap_snapshot: None,
            obs_flow_sig: None,
            down_nodes: BTreeSet::new(),
            down_links: BTreeSet::new(),
            trace_freeze: BTreeMap::new(),
            trace_change_cache: std::cell::Cell::new(None),
            last_weights: None,
            engine: AllocEngine::default(),
            index: AllocIndex { dirty: true, ..AllocIndex::default() },
            scratch: AllocScratch::default(),
            demands_scratch: Vec::new(),
            rates_bps: Vec::new(),
            link_cap_bps: vec![0.0; link_count],
            util_scratch: vec![0.0; link_count],
            alloc_jobs: 1,
            delta_valid: false,
            prev_caps_bps: Vec::new(),
            prev_demands_bps: Vec::new(),
            dirty_comps: Vec::new(),
            comp_dirty: Vec::new(),
            shard_pool: ShardPool::default(),
            max_node,
            dirty_tracking: true,
            caps_valid: false,
            link_dirty: vec![false; link_count],
            dirty_links: Vec::new(),
            cap_changed: Vec::new(),
            trace_heap: std::collections::BinaryHeap::new(),
            trace_heap_valid: false,
            demands_valid: false,
            flow_dirty: Vec::new(),
            dirty_flows: Vec::new(),
            cap_epoch: 0,
            cap_log: Vec::new(),
            cap_log_floor: 0,
            routes_epoch: 0,
            pending_full: true,
            pending_link_flag: vec![false; link_count],
            pending_links: Vec::new(),
            pending_flow_flag: Vec::new(),
            pending_flows: Vec::new(),
            flow_active: Vec::new(),
            active_flows: Vec::new(),
            rho_flag: Vec::new(),
            rho_list: Vec::new(),
            node_flag: vec![false; max_node],
            touched_nodes: Vec::new(),
            usage_check_every: 1024,
            usage_ticks: 0,
            usage_view_rebuilds: 0,
        })
    }

    /// The allocation engine [`Mesh::reallocate`] currently dispatches
    /// to (default [`AllocEngine::Incremental`]).
    pub fn alloc_engine(&self) -> AllocEngine {
        self.engine
    }

    /// Selects the allocation engine; takes effect at the next
    /// [`Mesh::reallocate`]. All engines produce bit-identical
    /// allocations (see [`AllocEngine`]), so this only changes cost.
    pub fn set_alloc_engine(&mut self, engine: AllocEngine) {
        self.engine = engine;
        // Snapshots taken under one engine may be stale for another
        // (the dense path does not maintain `rates_bps`): force the
        // delta engine to start from a full canonical fill.
        self.delta_valid = false;
    }

    /// Worker threads the delta engine fans dirty components out to
    /// (see [`Mesh::set_alloc_jobs`]).
    pub fn alloc_jobs(&self) -> usize {
        self.alloc_jobs
    }

    /// Sets how many worker threads the delta engine may use to fill
    /// dirty components within one tick (clamped to ≥ 1; default 1 =
    /// serial). Allocations are byte-identical at any job count: each
    /// component's fill is deterministic and writes a disjoint slice of
    /// the rate vector, so only wall-clock changes — the campaign
    /// runner's ordered-slot guarantee, applied inside a single tick.
    /// Other engines ignore this setting.
    pub fn set_alloc_jobs(&mut self, jobs: usize) {
        self.alloc_jobs = jobs.max(1);
    }

    /// Whether the O(dirty) tick pipeline is enabled (see
    /// [`Mesh::set_dirty_tracking`]; default on).
    pub fn dirty_tracking(&self) -> bool {
        self.dirty_tracking
    }

    /// Enables or disables dirty-set tracking. When disabled every tick
    /// falls back to the full-scan refreshes the engines ran before
    /// dirty tracking existed — the same allocations, bit for bit, just
    /// O(F + L) per tick regardless of how little changed. The
    /// equivalence batteries use the disabled mode as an oracle and the
    /// scale bench uses it as the full-refresh baseline column.
    pub fn set_dirty_tracking(&mut self, on: bool) {
        self.dirty_tracking = on;
        self.caps_valid = false;
        self.demands_valid = false;
        self.pending_full = true;
    }

    /// Sets how many partial usage-view updates may pass between drift
    /// audits (0 disables auditing; default 1024). Each audit recomputes
    /// `link_used`/`egress_used` from scratch and, on any bitwise
    /// divergence, installs the recomputed views and counts a rebuild.
    pub fn set_usage_check_every(&mut self, every: u64) {
        self.usage_check_every = every;
    }

    /// How many drift audits found (and repaired) a divergence. Stays
    /// zero in practice: partial updates re-*sum* every affected slot in
    /// full-pass order instead of applying signed deltas, so no float
    /// drift can accumulate — the audit is a safety net, not a repair
    /// loop.
    pub fn usage_view_rebuilds(&self) -> u64 {
        self.usage_view_rebuilds
    }

    /// Monotone counter of observed effective-capacity moves; pair with
    /// [`Mesh::capacity_changes_since`] to find out *which* links moved.
    pub fn capacity_epoch(&self) -> u64 {
        self.cap_epoch
    }

    /// The links whose effective capacity moved after `epoch` as
    /// `(epoch, link)` entries with strictly increasing epochs, oldest
    /// first — or `None` when that history has been discarded, in which
    /// case the caller must treat every link as changed. Capacity moves
    /// are observed (and logged) by the allocation refresh, so query
    /// this after a tick, not between out-of-band mutations.
    pub fn capacity_changes_since(&self, epoch: u64) -> Option<&[(u64, u32)]> {
        if epoch < self.cap_log_floor {
            return None;
        }
        let k = self.cap_log.partition_point(|&(e, _)| e <= epoch);
        Some(&self.cap_log[k..])
    }

    /// Bumped whenever routing, link/node up-down state, or the
    /// egress-cap set changes — controller score inputs that move
    /// without a logged per-link capacity change.
    pub fn routes_epoch(&self) -> u64 {
        self.routes_epoch
    }

    /// Creates a mesh where every link has the same constant capacity
    /// (the microbenchmark LAN shape).
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::NotConnected`] for disconnected topologies.
    pub fn with_uniform_capacity(topo: Topology, capacity: Bandwidth) -> Result<Self, MeshError> {
        let mut mesh = Mesh::new(topo)?;
        for cap in &mut mesh.link_caps {
            cap.set_source(CapacitySource::Constant(capacity));
        }
        Ok(mesh)
    }

    /// Creates a mesh whose link capacities replay a [`TraceBundle`];
    /// every link must have a trace under [`TraceBundle::link_key`].
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::NotConnected`] or [`MeshError::MissingTrace`].
    pub fn from_bundle(topo: Topology, bundle: &TraceBundle) -> Result<Self, MeshError> {
        let mut mesh = Mesh::new(topo)?;
        for (lid, link) in mesh.topo.links().collect::<Vec<_>>() {
            let key = TraceBundle::link_key(link.a.0, link.b.0);
            let trace = bundle
                .get(&key)
                .ok_or_else(|| MeshError::MissingTrace(key.clone()))?;
            mesh.link_caps[lid.0].set_source(CapacitySource::Trace(trace.clone()));
        }
        Ok(mesh)
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Borrow the topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Borrow the routing table.
    pub fn routes(&self) -> &RoutingTable {
        &self.routes
    }

    /// The hop-latency model in use.
    pub fn hop_latency(&self) -> HopLatency {
        self.hop_latency
    }

    /// Replaces the hop-latency model.
    pub fn set_hop_latency(&mut self, hl: HopLatency) {
        self.hop_latency = hl;
    }

    /// Switches the mesh to quality-aware (ETX-style) routing: routes
    /// minimize the total per-link weight returned by `weight_of`
    /// (lower is better) instead of hop count. Every registered flow is
    /// re-routed onto its new path (queues are preserved — rerouting a
    /// live mesh does not drop queued data).
    ///
    /// # Panics
    ///
    /// Panics if a weight is negative or non-finite.
    pub fn use_weighted_routing(&mut self, mut weight_of: impl FnMut(LinkId) -> f64) {
        let weights: Vec<f64> = (0..self.topo.link_count())
            .map(|i| weight_of(LinkId(i)))
            .collect();
        self.last_weights = Some(weights);
        self.recompute_routes_and_flows();
        self.reallocate();
    }

    // ----- fault state ------------------------------------------------------

    /// Marks a node up or down. A down node's links all become unusable:
    /// routes avoid them, its flows lose their allocation, and capacity
    /// queries report zero. Routes and flow paths are recomputed.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownNode`] if the node does not exist.
    pub fn set_node_up(&mut self, node: NodeId, up: bool) -> Result<(), MeshError> {
        if !self.topo.contains_node(node) {
            return Err(MeshError::UnknownNode(node));
        }
        let changed = if up {
            self.down_nodes.remove(&node)
        } else {
            self.down_nodes.insert(node)
        };
        if changed {
            self.recompute_routes_and_flows();
            self.reallocate();
        }
        Ok(())
    }

    /// Marks the link between `a` and `b` up or down, independent of the
    /// endpoints' node state. Routes and flow paths are recomputed.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownLink`] if no such link exists.
    pub fn set_link_up(&mut self, a: NodeId, b: NodeId, up: bool) -> Result<(), MeshError> {
        let lid = self.topo.find_link(a, b).ok_or(MeshError::UnknownLink(a, b))?;
        let changed = if up {
            self.down_links.remove(&lid)
        } else {
            self.down_links.insert(lid)
        };
        if changed {
            self.recompute_routes_and_flows();
            self.reallocate();
        }
        Ok(())
    }

    /// True when the node exists and is not crashed.
    pub fn node_is_up(&self, node: NodeId) -> bool {
        self.topo.contains_node(node) && !self.down_nodes.contains(&node)
    }

    /// True when the link exists, is not down, and neither endpoint is
    /// crashed.
    pub fn link_is_up(&self, a: NodeId, b: NodeId) -> bool {
        match self.topo.find_link(a, b) {
            Some(lid) => self.usable(lid),
            None => false,
        }
    }

    /// Freezes the link's trace feed at the current time: until unfrozen,
    /// capacity reads replay the instant of the freeze (a stale
    /// telemetry feed). Up/down state still applies on top.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownLink`] if no such link exists.
    pub fn freeze_link_trace(&mut self, a: NodeId, b: NodeId) -> Result<(), MeshError> {
        let lid = self.topo.find_link(a, b).ok_or(MeshError::UnknownLink(a, b))?;
        self.trace_freeze.entry(lid).or_insert(self.now);
        self.trace_change_cache.set(None);
        self.trace_heap_valid = false;
        self.mark_link_capacity_dirty(lid);
        self.reallocate();
        Ok(())
    }

    /// Reverses [`freeze_link_trace`](Self::freeze_link_trace).
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownLink`] if no such link exists.
    pub fn unfreeze_link_trace(&mut self, a: NodeId, b: NodeId) -> Result<(), MeshError> {
        let lid = self.topo.find_link(a, b).ok_or(MeshError::UnknownLink(a, b))?;
        self.trace_freeze.remove(&lid);
        self.trace_change_cache.set(None);
        self.trace_heap_valid = false;
        self.mark_link_capacity_dirty(lid);
        self.reallocate();
        Ok(())
    }

    /// The raw effective capacity of the link between `a` and `b` — the
    /// per-link ceiling the max-min allocator enforces (zero when the
    /// link or an endpoint is down; frozen-in-time when the trace feed
    /// is stale). Unlike [`link_capacity`](Self::link_capacity) no
    /// egress caps are folded in, so `link_usage ≤ link_effective_capacity`
    /// is an invariant of every allocation.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownLink`] if no such link exists.
    pub fn link_effective_capacity(&self, a: NodeId, b: NodeId) -> Result<Bandwidth, MeshError> {
        let lid = self.topo.find_link(a, b).ok_or(MeshError::UnknownLink(a, b))?;
        Ok(self.effective_link_capacity(lid))
    }

    /// True when the link and both its endpoints are up.
    fn usable(&self, lid: LinkId) -> bool {
        if self.down_links.contains(&lid) {
            return false;
        }
        let link = self.topo.link(lid);
        !self.down_nodes.contains(&link.a) && !self.down_nodes.contains(&link.b)
    }

    /// The capacity the allocator grants the link right now: zero when
    /// unusable, otherwise the source's value at `now` (or at the freeze
    /// instant for stale-trace links), with any `tc` cap applied.
    fn effective_link_capacity(&self, lid: LinkId) -> Bandwidth {
        if !self.usable(lid) {
            return Bandwidth::ZERO;
        }
        let at = self.trace_freeze.get(&lid).copied().unwrap_or(self.now);
        self.link_caps[lid.0].effective_at(at)
    }

    /// Rebuilds the routing table honoring down links/nodes (weighted
    /// when weighted routing is active) and tolerantly re-routes every
    /// flow: flows whose route vanished are parked as unroutable (zero
    /// allocation, queues preserved) and restored when a later
    /// recomputation finds a path again.
    fn recompute_routes_and_flows(&mut self) {
        // Borrow the fault state instead of cloning it: the routing
        // computation only needs shared access, and the result is
        // assigned to `self.routes` after the borrows end.
        let topo = &self.topo;
        let down_links = &self.down_links;
        let down_nodes = &self.down_nodes;
        let usable = |lid: LinkId| {
            if down_links.contains(&lid) {
                return false;
            }
            let link = topo.link(lid);
            !down_nodes.contains(&link.a) && !down_nodes.contains(&link.b)
        };
        let routes = match &self.last_weights {
            Some(w) => RoutingTable::compute_weighted_filtered(topo, |lid| w[lid.0], usable),
            None => RoutingTable::compute_filtered(topo, usable),
        };
        self.routes = routes;
        for f in self.flows.values_mut() {
            let (src, dst) = (f.spec.src, f.spec.dst);
            let routed = if src == dst {
                // Loopback dies with its node.
                (!self.down_nodes.contains(&src)).then(|| (Vec::new(), Vec::new()))
            } else {
                self.routes.path_links(&self.topo, src, dst).map(|links| {
                    let path = self.routes.path(src, dst).expect("path exists");
                    (links, path[..path.len() - 1].to_vec())
                })
            };
            match routed {
                Some((links, egress)) => {
                    f.links = links;
                    f.egress = egress;
                    f.routable = true;
                }
                None => {
                    f.links.clear();
                    f.egress.clear();
                    f.routable = false;
                }
            }
        }
        self.index.dirty = true;
        // Up/down state feeds effective capacities and paths feed
        // controller scores: both the capacity caches and any score
        // cache keyed on the routes epoch must refresh.
        self.caps_valid = false;
        self.routes_epoch += 1;
    }

    // ----- capacity control ------------------------------------------------

    /// Sets the base capacity source for the link between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownLink`] if no such link exists.
    pub fn set_link_source(
        &mut self,
        a: NodeId,
        b: NodeId,
        source: CapacitySource,
    ) -> Result<(), MeshError> {
        let lid = self.topo.find_link(a, b).ok_or(MeshError::UnknownLink(a, b))?;
        self.link_caps[lid.0].set_source(source);
        self.trace_change_cache.set(None);
        self.trace_heap_valid = false;
        self.mark_link_capacity_dirty(lid);
        Ok(())
    }

    /// Applies (or clears, with `None`) a `tc`-style cap on a link.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownLink`] if no such link exists.
    pub fn set_link_cap(
        &mut self,
        a: NodeId,
        b: NodeId,
        cap: Option<Bandwidth>,
    ) -> Result<(), MeshError> {
        let lid = self.topo.find_link(a, b).ok_or(MeshError::UnknownLink(a, b))?;
        self.link_caps[lid.0].set_cap(cap);
        self.mark_link_capacity_dirty(lid);
        Ok(())
    }

    /// Applies (or clears) a cap on a node's total outgoing traffic —
    /// the paper's "limit outgoing traffic at node 2 to 30 Mbps".
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownNode`] if the node does not exist.
    pub fn set_node_egress_cap(
        &mut self,
        node: NodeId,
        cap: Option<Bandwidth>,
    ) -> Result<(), MeshError> {
        if !self.topo.contains_node(node) {
            return Err(MeshError::UnknownNode(node));
        }
        match cap {
            Some(c) => {
                self.egress_caps.insert(node, c);
            }
            None => {
                self.egress_caps.remove(&node);
            }
        }
        // The egress constraint set changed shape (or value): rebuild the
        // membership index at the next allocation. Controller scores see
        // this through the routes epoch (no per-link capacity is logged).
        self.index.dirty = true;
        self.routes_epoch += 1;
        Ok(())
    }

    // ----- flows ------------------------------------------------------------

    /// Registers a flow from `src` to `dst` with the given demand.
    /// Loopback flows (`src == dst`) are allowed and are never
    /// network-constrained. When fault injection has severed every route
    /// between the endpoints the flow is still registered — parked as
    /// unroutable with zero allocation until connectivity returns
    /// (disconnected *topologies* are rejected at [`Mesh::new`], so this
    /// only happens under faults).
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownNode`] for unknown endpoints.
    pub fn add_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        demand: Bandwidth,
    ) -> Result<FlowId, MeshError> {
        for &n in &[src, dst] {
            if !self.topo.contains_node(n) {
                return Err(MeshError::UnknownNode(n));
            }
        }
        let routed = if src == dst {
            (!self.down_nodes.contains(&src)).then(|| (Vec::new(), Vec::new()))
        } else {
            self.routes.path_links(&self.topo, src, dst).map(|links| {
                let path = self.routes.path(src, dst).expect("path exists");
                (links, path[..path.len() - 1].to_vec())
            })
        };
        let (links, egress, routable) = match routed {
            Some((links, egress)) => (links, egress, true),
            None => (Vec::new(), Vec::new(), false),
        };
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.flows.insert(
            id,
            FlowState {
                spec: FlowSpec { src, dst, demand },
                links,
                egress,
                queue: FlowQueue::new(),
                routable,
            },
        );
        self.index.dirty = true;
        Ok(id)
    }

    /// Updates a flow's offered demand.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownFlow`] for unknown ids.
    pub fn set_flow_demand(&mut self, id: FlowId, demand: Bandwidth) -> Result<(), MeshError> {
        let flow = self.flows.get_mut(&id).ok_or(MeshError::UnknownFlow(id))?;
        // The emulator re-pushes every demand every tick; only a bitwise
        // change dirties the slot (the common tick marks nothing).
        let changed = flow.spec.demand.as_bps().to_bits() != demand.as_bps().to_bits();
        flow.spec.demand = demand;
        if changed {
            self.mark_flow_demand_dirty(id);
        }
        Ok(())
    }

    /// Removes a flow, dropping its queue.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownFlow`] for unknown ids.
    pub fn remove_flow(&mut self, id: FlowId) -> Result<(), MeshError> {
        self.flows.remove(&id).ok_or(MeshError::UnknownFlow(id))?;
        self.index.dirty = true;
        Ok(())
    }

    /// Clears a flow's queue backlog (connection re-establishment after a
    /// component restart).
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownFlow`] for unknown ids.
    pub fn reset_flow_queue(&mut self, id: FlowId) -> Result<(), MeshError> {
        let flow = self.flows.get_mut(&id).ok_or(MeshError::UnknownFlow(id))?;
        flow.queue.reset();
        // Dropping the backlog moves the drain demand and may
        // deactivate the queue.
        self.mark_flow_demand_dirty(id);
        Ok(())
    }

    /// The spec of a flow.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownFlow`] for unknown ids.
    pub fn flow_spec(&self, id: FlowId) -> Result<FlowSpec, MeshError> {
        self.flows
            .get(&id)
            .map(|f| f.spec)
            .ok_or(MeshError::UnknownFlow(id))
    }

    /// Number of registered flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    // ----- stepping ---------------------------------------------------------

    /// Advances simulation time by `dt`: refresh capacities, recompute
    /// the fair allocation, and integrate queues.
    pub fn advance(&mut self, dt: SimDuration) {
        self.advance_profiled(dt, None, None);
    }

    /// [`advance`](Self::advance) with optional journal emission and span
    /// profiling. With both `None` this *is* `advance` — the profiler is
    /// threaded as `Option` so the hot path pays one branch per phase
    /// and never reads a clock when profiling is off. Spans recorded
    /// (see `docs/OBSERVABILITY.md`): the `mesh.*` allocation phases via
    /// [`reallocate_profiled`](Self::reallocate_profiled), plus
    /// `mesh.queues` (queue integration) and `mesh.obs_emit` (journal
    /// diffing) here.
    pub fn advance_profiled(
        &mut self,
        dt: SimDuration,
        journal: Option<&mut bass_obs::Journal>,
        mut profiler: Option<&mut bass_obs::SpanProfiler>,
    ) {
        self.now += dt;
        self.reallocate_profiled(profiler.as_deref_mut());
        let mut clock = bass_obs::PhaseClock::new(profiler.is_some());
        let link_count = self.topo.link_count();
        let n = self.flows.len();
        // The O(dirty) pass is only sound when the activity bookkeeping
        // matches the current flow set and nothing demanded a rebuild.
        let full = self.pending_full
            || !self.dirty_tracking
            || self.index.ids.len() != n
            || self.allocation.len() != n
            || self.flow_active.len() != n
            || self.rho_flag.len() != n
            || self.pending_flow_flag.len() != n
            || self.util_scratch.len() != link_count
            || self.pending_link_flag.len() != link_count;
        if full {
            self.advance_queues_full(dt, link_count);
        } else {
            self.advance_queues_dirty(dt);
        }
        clock.lap(profiler.as_deref_mut(), "mesh.queues");
        if let Some(j) = journal {
            self.emit_capacity_changes(j, "trace");
            self.emit_flow_rate_recompute(j);
            clock.lap(profiler, "mesh.obs_emit");
        }
    }

    /// The full O(F + L) queue pass: derive every link's utilization,
    /// advance every flow queue, and rebuild the activity bookkeeping
    /// from scratch — also re-arming the dirty sets so subsequent
    /// passes can go O(dirty).
    fn advance_queues_full(&mut self, dt: SimDuration, link_count: usize) {
        // Per-link utilization for the queueing model, derived from the
        // effective capacities `reallocate` just cached (same instant,
        // so no capacity source is queried twice per tick).
        self.util_scratch.resize(link_count, 0.0);
        for i in 0..link_count {
            let cap = self.link_cap_bps[i];
            self.util_scratch[i] = if cap <= f64::EPSILON {
                if self.link_used_bps[i] > 0.0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                (self.link_used_bps[i] / cap).clamp(0.0, 1.0)
            };
        }
        let n = self.flows.len();
        // Backlog movements feed the demand dirty set only while the
        // slot numbering is live; under a stale index the next refresh
        // is full anyway.
        let track = self.dirty_tracking && !self.index.dirty && self.flow_dirty.len() == n;
        self.flow_active.clear();
        self.flow_active.resize(n, false);
        self.active_flows.clear();
        self.rho_flag.clear();
        self.rho_flag.resize(n, false);
        self.rho_list.clear();
        // `reallocate` left `allocation` keyed exactly by the current
        // flow set (ascending), so the two maps zip in lockstep — no
        // per-flow map lookup on the hot path.
        debug_assert_eq!(self.allocation.len(), self.flows.len());
        for (slot, ((&id, flow), (aid, allocated))) in
            self.flows.iter_mut().zip(self.allocation.iter()).enumerate()
        {
            debug_assert_eq!(id, aid);
            let _ = id;
            let before = flow.queue.backlog().as_bytes();
            flow.queue.advance(dt, flow.spec.demand, allocated);
            let rho = flow
                .links
                .iter()
                .map(|l| self.util_scratch[l.0])
                .fold(0.0f64, f64::max);
            flow.queue.set_path_utilization(rho);
            if track && flow.queue.backlog().as_bytes() != before && !self.flow_dirty[slot] {
                self.flow_dirty[slot] = true;
                self.dirty_flows.push(slot as u32);
            }
            if flow.queue.backlog_bits() > 0.0
                || flow.spec.demand.as_bps() > allocated.as_bps()
            {
                self.flow_active[slot] = true;
                self.active_flows.push(slot as u32);
            }
        }
        // The full pass consumed every pending marker: reset the sets.
        self.pending_link_flag.clear();
        self.pending_link_flag.resize(link_count, false);
        self.pending_links.clear();
        self.pending_flow_flag.clear();
        self.pending_flow_flag.resize(n, false);
        self.pending_flows.clear();
        self.pending_full = !self.dirty_tracking;
    }

    /// The O(dirty) queue pass: utilizations re-derived only for links
    /// whose capacity or usage moved, activity re-evaluated only for
    /// flows whose rate or demand moved, queue integration only over
    /// active flows (everyone else's advance is bitwise the identity),
    /// and path utilization re-pushed only to flows crossing a moved
    /// link. Only sound right after a tick whose reallocation kept the
    /// pending sets live (see the guard in
    /// [`advance_profiled`](Self::advance_profiled)).
    fn advance_queues_dirty(&mut self, dt: SimDuration) {
        // 1. Re-derive the utilization of moved links; members of links
        //    whose utilization bits actually moved need a rho re-push.
        for k in 0..self.pending_links.len() {
            let l = self.pending_links[k] as usize;
            self.pending_link_flag[l] = false;
            let cap = self.link_cap_bps[l];
            let util = if cap <= f64::EPSILON {
                if self.link_used_bps[l] > 0.0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                (self.link_used_bps[l] / cap).clamp(0.0, 1.0)
            };
            if util.to_bits() == self.util_scratch[l].to_bits() {
                continue;
            }
            self.util_scratch[l] = util;
            for &m in &self.index.constraints[l].members {
                if !self.rho_flag[m] {
                    self.rho_flag[m] = true;
                    self.rho_list.push(m as u32);
                }
            }
        }
        self.pending_links.clear();
        // 2. Re-evaluate the activity of touched flows.
        for k in 0..self.pending_flows.len() {
            let s = self.pending_flows[k] as usize;
            self.pending_flow_flag[s] = false;
            if self.flow_active[s] {
                continue;
            }
            let f = &self.flows[&self.index.ids[s]];
            let allocated_bps = Bandwidth::from_bps(self.rates_bps[s]).as_bps();
            if f.queue.backlog_bits() > 0.0 || f.spec.demand.as_bps() > allocated_bps {
                self.flow_active[s] = true;
                self.active_flows.push(s as u32);
            }
        }
        self.pending_flows.clear();
        // 3. Integrate active queues; drop the ones that reached the
        //    integration fixed point (drained, demand satisfied).
        let mut k = 0;
        while k < self.active_flows.len() {
            let s = self.active_flows[k] as usize;
            let id = self.index.ids[s];
            let allocated = Bandwidth::from_bps(self.rates_bps[s]);
            let flow = self.flows.get_mut(&id).expect("indexed flow exists");
            let before = flow.queue.backlog().as_bytes();
            flow.queue.advance(dt, flow.spec.demand, allocated);
            if flow.queue.backlog().as_bytes() != before && !self.flow_dirty[s] {
                self.flow_dirty[s] = true;
                self.dirty_flows.push(s as u32);
            }
            if flow.queue.backlog_bits() > 0.0 || flow.spec.demand.as_bps() > allocated.as_bps()
            {
                k += 1;
            } else {
                self.flow_active[s] = false;
                self.active_flows.swap_remove(k);
            }
        }
        // 4. Re-push path utilization to flows crossing moved links.
        for k in 0..self.rho_list.len() {
            let s = self.rho_list[k] as usize;
            self.rho_flag[s] = false;
            let id = self.index.ids[s];
            let flow = self.flows.get_mut(&id).expect("indexed flow exists");
            let rho = flow
                .links
                .iter()
                .map(|l| self.util_scratch[l.0])
                .fold(0.0f64, f64::max);
            flow.queue.set_path_utilization(rho);
        }
        self.rho_list.clear();
    }

    /// Whether one `dt`-long [`advance`](Self::advance) would leave
    /// every flow queue bitwise unchanged, assuming no step input moves
    /// (the event-driven scanner separately proves that). When true —
    /// and it stays true, since nothing else changed — a whole window of
    /// ticks reduces to moving the clock, which is exactly what
    /// [`advance_quiescent`](Self::advance_quiescent) does.
    pub fn queues_quiescent(&self, dt: SimDuration) -> bool {
        if self.allocation.len() != self.flows.len() {
            // No allocation computed yet (pre-first-tick) — a full step
            // would change state, so nothing is skippable.
            return false;
        }
        self.flows
            .values()
            .zip(self.allocation.iter())
            .all(|(f, (_, allocated))| {
                f.queue.advance_is_identity(dt, f.spec.demand, allocated)
            })
    }

    /// Earliest strictly-later change-point across every live (unfrozen)
    /// traced link, or `None` when all capacities are constant from `t`
    /// on. Frozen links read their capacity at the freeze time, so their
    /// traces cannot change anything until unfrozen.
    /// The scan is memoized: change-points are a static property of the
    /// installed traces, so a result `(from, next)` answers every query
    /// in `[from, next)` without rescanning — the earliest change after
    /// `from` being `next` means the interval contains no change-point,
    /// hence the earliest change after any `t` inside it is still
    /// `next`. The cache is dropped whenever the set itself can move:
    /// [`set_link_source`](Self::set_link_source),
    /// [`freeze_link_trace`](Self::freeze_link_trace),
    /// [`unfreeze_link_trace`](Self::unfreeze_link_trace).
    pub fn next_trace_change_after(&self, t: SimTime) -> Option<SimTime> {
        if let Some((from, next)) = self.trace_change_cache.get() {
            if t >= from && next.is_none_or(|n| t < n) {
                return next;
            }
        }
        let mut next: Option<SimTime> = None;
        for (i, lc) in self.link_caps.iter().enumerate() {
            if self.trace_freeze.contains_key(&LinkId(i)) {
                continue;
            }
            if let CapacitySource::Trace(trace) = lc.source() {
                if let Some(st) = trace.next_change_after(t) {
                    next = Some(next.map_or(st, |n| n.min(st)));
                }
            }
        }
        self.trace_change_cache.set(Some((t, next)));
        next
    }

    /// Advances the clock by `dt` without touching capacities,
    /// allocations, or queues. Only sound for a tick the caller has
    /// proven quiescent — every step input bitwise unchanged and
    /// [`queues_quiescent`](Self::queues_quiescent) — in which case a
    /// full [`advance`](Self::advance) would recompute the identity.
    pub fn advance_quiescent(&mut self, dt: SimDuration) {
        self.now += dt;
    }

    /// Recomputes the allocation at the current time without advancing
    /// queues (useful right after changing demands or capacities),
    /// dispatching to the configured [`AllocEngine`].
    pub fn reallocate(&mut self) {
        self.reallocate_profiled(None);
    }

    /// [`reallocate`](Self::reallocate) with span profiling. The
    /// incremental engine records its interior phases
    /// (`mesh.index_rebuild` when the membership index was dirty,
    /// `mesh.trace_refresh`, `mesh.water_fill`, `mesh.usage_views`); the
    /// delta engine additionally records `mesh.component_scan` (the
    /// dirty-component diff), `mesh.delta_fill` (serial component
    /// refills) and `mesh.shard_fill` (threaded refills); the dense
    /// reference engine records one `mesh.dense_realloc` span.
    pub fn reallocate_profiled(&mut self, profiler: Option<&mut bass_obs::SpanProfiler>) {
        match self.engine {
            AllocEngine::Dense => {
                let _span = bass_obs::SpanProfiler::span(profiler, "mesh.dense_realloc");
                self.reallocate_dense();
            }
            AllocEngine::Incremental => self.reallocate_incremental(profiler),
            AllocEngine::Delta => self.reallocate_delta(profiler),
        }
    }

    /// The transmit demand of one flow: offered load plus bandwidth to
    /// drain any queued backlog within one second — this is how a real
    /// transport keeps transmitting a queue even after the application
    /// stops producing. An unroutable flow transmits nothing at all.
    fn transmit_demand(f: &FlowState) -> Bandwidth {
        if !f.routable {
            Bandwidth::ZERO
        } else {
            f.spec.demand + f.queue.backlog().rate_over(SimDuration::from_secs(1))
        }
    }

    /// Marks one link as needing a capacity re-read at the next refresh.
    fn mark_link_capacity_dirty(&mut self, lid: LinkId) {
        if lid.0 >= self.link_dirty.len() {
            self.caps_valid = false;
            return;
        }
        if !self.link_dirty[lid.0] {
            self.link_dirty[lid.0] = true;
            self.dirty_links.push(lid.0 as u32);
        }
    }

    /// Marks one flow's transmit demand (and queue-activity predicate)
    /// as needing a refresh at the next allocation / queue pass.
    fn mark_flow_demand_dirty(&mut self, id: FlowId) {
        if self.index.dirty || self.flow_dirty.len() != self.index.ids.len() {
            // The slot map is stale; the next allocation runs the full
            // refresh (and a full queue pass) anyway.
            self.demands_valid = false;
            self.pending_full = true;
            return;
        }
        match self.index.ids.binary_search(&id) {
            Ok(slot) => {
                if !self.flow_dirty[slot] {
                    self.flow_dirty[slot] = true;
                    self.dirty_flows.push(slot as u32);
                }
                self.touch_flow(slot);
            }
            Err(_) => {
                self.demands_valid = false;
                self.pending_full = true;
            }
        }
    }

    /// Queues a link for utilization re-derivation at the next queue
    /// pass.
    fn touch_link(&mut self, l: usize) {
        if l >= self.pending_link_flag.len() {
            self.pending_full = true;
            return;
        }
        if !self.pending_link_flag[l] {
            self.pending_link_flag[l] = true;
            self.pending_links.push(l as u32);
        }
    }

    /// Queues a flow slot for queue-activity re-evaluation at the next
    /// queue pass.
    fn touch_flow(&mut self, slot: usize) {
        if slot >= self.pending_flow_flag.len() {
            self.pending_full = true;
            return;
        }
        if !self.pending_flow_flag[slot] {
            self.pending_flow_flag[slot] = true;
            self.pending_flows.push(slot as u32);
        }
    }

    /// Records that a link's effective capacity moved: advances the
    /// capacity epoch, appends to the change log (resetting it when
    /// full), and queues the link for this tick's delta diff scan and
    /// utilization refresh.
    fn log_cap_change(&mut self, l: usize) {
        self.cap_epoch += 1;
        if self.cap_log.len() >= CAP_LOG_LIMIT {
            self.cap_log.clear();
            self.cap_log_floor = self.cap_epoch - 1;
        }
        self.cap_log.push((self.cap_epoch, l as u32));
        self.cap_changed.push(l as u32);
        self.touch_link(l);
    }

    /// Rebuilds the upcoming trace change-point heap from scratch: one
    /// entry per live (unfrozen) traced link, holding its earliest
    /// change strictly after `now`.
    fn rebuild_trace_heap(&mut self) {
        self.trace_heap.clear();
        for (i, lc) in self.link_caps.iter().enumerate() {
            if self.trace_freeze.contains_key(&LinkId(i)) {
                continue;
            }
            if let CapacitySource::Trace(trace) = lc.source() {
                if let Some(t) = trace.next_change_after(self.now) {
                    self.trace_heap.push(std::cmp::Reverse((t, i as u32)));
                }
            }
        }
        self.trace_heap_valid = true;
    }

    /// Full capacity refresh: re-reads every link's effective capacity
    /// and every egress cap into the persistent index, logging each
    /// capacity that moved (the delta diff scan and the controller's
    /// score cache consume the log). Used when dirty tracking is off or
    /// its bookkeeping was invalidated; re-arms the dirty-set state.
    fn refresh_constraint_caps(&mut self, link_count: usize) {
        self.cap_changed.clear();
        self.link_cap_bps.resize(link_count, 0.0);
        for i in 0..link_count {
            let bps = self.effective_link_capacity(LinkId(i)).as_bps();
            if bps.to_bits() != self.link_cap_bps[i].to_bits() {
                self.link_cap_bps[i] = bps;
                self.log_cap_change(i);
            }
        }
        let AllocIndex { constraints, egress_nodes, .. } = &mut self.index;
        for (c, &bps) in constraints.iter_mut().zip(&self.link_cap_bps) {
            c.capacity = Bandwidth::from_bps(bps);
        }
        for (k, node) in egress_nodes.iter().enumerate() {
            constraints[link_count + k].capacity = self.egress_caps[node];
        }
        // The full pass covered every link: drain the per-link dirty set
        // and re-arm the trace heap so the next tick can go O(dirty).
        for k in 0..self.dirty_links.len() {
            let l = self.dirty_links[k] as usize;
            if let Some(fl) = self.link_dirty.get_mut(l) {
                *fl = false;
            }
        }
        self.dirty_links.clear();
        if self.dirty_tracking {
            self.rebuild_trace_heap();
            self.caps_valid = true;
        } else {
            self.caps_valid = false;
        }
    }

    /// O(dirty) capacity refresh: pops due trace change-points off the
    /// heap into the dirty-link set, then re-reads only the dirty
    /// links. Only sound while `caps_valid` — every link outside the
    /// dirty set has a bitwise-current cached capacity.
    fn refresh_constraint_caps_dirty(&mut self) {
        self.cap_changed.clear();
        if !self.trace_heap_valid {
            self.rebuild_trace_heap();
        }
        while let Some(&std::cmp::Reverse((t, l))) = self.trace_heap.peek() {
            if t > self.now {
                break;
            }
            self.trace_heap.pop();
            self.mark_link_capacity_dirty(LinkId(l as usize));
            if let CapacitySource::Trace(trace) = self.link_caps[l as usize].source() {
                if let Some(nt) = trace.next_change_after(self.now) {
                    self.trace_heap.push(std::cmp::Reverse((nt, l)));
                }
            }
        }
        for k in 0..self.dirty_links.len() {
            let l = self.dirty_links[k] as usize;
            self.link_dirty[l] = false;
            let bps = self.effective_link_capacity(LinkId(l)).as_bps();
            if bps.to_bits() != self.link_cap_bps[l].to_bits() {
                self.link_cap_bps[l] = bps;
                self.index.constraints[l].capacity = Bandwidth::from_bps(bps);
                self.log_cap_change(l);
            }
        }
        self.dirty_links.clear();
    }

    /// Refreshes `demands_scratch`. Returns `true` when only the dirty
    /// slots were rewritten — so `dirty_flows` is an exhaustive list of
    /// every slot that can have moved — and `false` after a full
    /// rewrite. Either way the dirty-flow set is left intact for the
    /// delta diff scan; the caller clears it via
    /// [`clear_dirty_flows`](Self::clear_dirty_flows).
    fn refresh_demands(&mut self) -> bool {
        let n = self.index.ids.len();
        if self.dirty_tracking
            && self.demands_valid
            && self.demands_scratch.len() == n
            && self.flow_dirty.len() == n
        {
            for k in 0..self.dirty_flows.len() {
                let slot = self.dirty_flows[k] as usize;
                let f = &self.flows[&self.index.ids[slot]];
                self.demands_scratch[slot] = Self::transmit_demand(f);
            }
            return true;
        }
        self.demands_scratch.clear();
        for f in self.flows.values() {
            self.demands_scratch.push(Self::transmit_demand(f));
        }
        self.dirty_flows.clear();
        self.flow_dirty.clear();
        self.flow_dirty.resize(n, false);
        self.demands_valid = self.dirty_tracking;
        false
    }

    /// Clears the dirty-flow set (flags and list).
    fn clear_dirty_flows(&mut self) {
        for k in 0..self.dirty_flows.len() {
            let s = self.dirty_flows[k] as usize;
            if let Some(fl) = self.flow_dirty.get_mut(s) {
                *fl = false;
            }
        }
        self.dirty_flows.clear();
    }

    /// Recomputes the per-link and per-node-egress usage views from
    /// `rates_bps`. Each link's members are in ascending flow order, so
    /// the float accumulation order matches the dense path's flow-major
    /// loop exactly. A full rewrite can move any utilization, so the
    /// next queue pass runs in full.
    fn update_usage_views(&mut self, link_count: usize) {
        self.link_used_bps.resize(link_count, 0.0);
        self.link_used_bps.fill(0.0);
        for (ci, c) in self.index.constraints[..link_count].iter().enumerate() {
            for &m in &c.members {
                self.link_used_bps[ci] += self.rates_bps[m];
            }
        }
        self.egress_used_bps.resize(self.max_node, 0.0);
        self.egress_used_bps.fill(0.0);
        for (i, f) in self.flows.values().enumerate() {
            for &node in &f.egress {
                self.egress_used_bps[node.0 as usize] += self.rates_bps[i];
            }
        }
        self.pending_full = true;
    }

    /// O(dirty) usage-view update: re-sums the links of every dirty
    /// component and the egress of every node their flows touch, in the
    /// same ascending-member order as the full pass. Re-summing (rather
    /// than applying signed deltas) keeps every view bit-identical to a
    /// full recompute, which the periodic drift audit asserts.
    fn update_usage_views_delta(&mut self, link_count: usize) {
        for k in 0..self.dirty_comps.len() {
            let comp = self.dirty_comps[k];
            for &ci in self.index.comps.constraints_of(comp) {
                if ci >= link_count {
                    continue; // egress constraints have no usage view
                }
                let mut sum = 0.0;
                for &m in &self.index.constraints[ci].members {
                    sum += self.rates_bps[m];
                }
                self.link_used_bps[ci] = sum;
                if !self.pending_link_flag[ci] {
                    self.pending_link_flag[ci] = true;
                    self.pending_links.push(ci as u32);
                }
            }
            for &i in self.index.comps.flows_of(comp) {
                let s = self.index.flow_egr_off[i];
                let e = self.index.flow_egr_off[i + 1];
                for &node in &self.index.flow_egr[s..e] {
                    let n = node as usize;
                    if !self.node_flag[n] {
                        self.node_flag[n] = true;
                        self.touched_nodes.push(node);
                    }
                }
            }
        }
        for k in 0..self.touched_nodes.len() {
            let n = self.touched_nodes[k] as usize;
            self.node_flag[n] = false;
            let s = self.index.egr_members_off[n];
            let e = self.index.egr_members_off[n + 1];
            let mut sum = 0.0;
            for &m in &self.index.egr_members[s..e] {
                sum += self.rates_bps[m];
            }
            self.egress_used_bps[n] = sum;
        }
        self.touched_nodes.clear();
    }

    /// Recomputes both usage views from scratch and compares bitwise
    /// against the incrementally maintained ones. On any divergence the
    /// recomputed views are installed, the rebuild counter bumps, and
    /// the next queue pass runs in full. Returns whether drift was
    /// found (asserted never in the unit tests of the maintained path).
    fn audit_usage_views(&mut self, link_count: usize) -> bool {
        let mut links = vec![0.0; link_count];
        for (ci, c) in self.index.constraints[..link_count].iter().enumerate() {
            for &m in &c.members {
                links[ci] += self.rates_bps[m];
            }
        }
        let mut egress = vec![0.0; self.max_node];
        for (i, f) in self.flows.values().enumerate() {
            for &node in &f.egress {
                egress[node.0 as usize] += self.rates_bps[i];
            }
        }
        let drift = links.len() != self.link_used_bps.len()
            || egress.len() != self.egress_used_bps.len()
            || links
                .iter()
                .zip(&self.link_used_bps)
                .any(|(a, b)| a.to_bits() != b.to_bits())
            || egress
                .iter()
                .zip(&self.egress_used_bps)
                .any(|(a, b)| a.to_bits() != b.to_bits());
        if drift {
            self.link_used_bps = links;
            self.egress_used_bps = egress;
            self.usage_view_rebuilds += 1;
            self.pending_full = true;
        }
        drift
    }

    /// The steady-state hot path: refresh constraint capacities in
    /// place, run the incremental allocator over the persistent
    /// membership index (rebuilding it only when dirty), and update the
    /// usage views — all without allocating.
    fn reallocate_incremental(&mut self, mut profiler: Option<&mut bass_obs::SpanProfiler>) {
        let mut clock = bass_obs::PhaseClock::new(profiler.is_some());
        let link_count = self.topo.link_count();
        if self.index.dirty {
            self.index.rebuild(link_count, &self.flows, &self.egress_caps, self.max_node);
            self.delta_valid = false;
            self.caps_valid = false;
            self.demands_valid = false;
            self.pending_full = true;
            clock.lap(profiler.as_deref_mut(), "mesh.index_rebuild");
        }

        if self.dirty_tracking && self.caps_valid && self.link_cap_bps.len() == link_count {
            self.refresh_constraint_caps_dirty();
            clock.lap(profiler.as_deref_mut(), "mesh.cap_diff");
        } else {
            self.refresh_constraint_caps(link_count);
            clock.lap(profiler.as_deref_mut(), "mesh.trace_refresh");
        }

        if self.refresh_demands() {
            clock.lap(profiler.as_deref_mut(), "mesh.demand_diff");
        }
        self.clear_dirty_flows();
        max_min_allocate_into(
            &self.demands_scratch,
            &self.index.constraints,
            &self.index.flow_cons_off,
            &self.index.flow_cons,
            &mut self.scratch,
            &mut self.rates_bps,
        );
        self.allocation.assign(&self.index.ids, &self.rates_bps);
        clock.lap(profiler.as_deref_mut(), "mesh.water_fill");

        self.update_usage_views(link_count);
        clock.lap(profiler, "mesh.usage_views");
    }

    /// The delta hot path: diff constraint capacities and transmit
    /// demands against the last tick's snapshots (bit-compare — the
    /// common quiescent tick marks nothing), refill only the dirty
    /// components, and keep every other component's rates verbatim.
    /// Falls back to one full canonical fill whenever the membership
    /// index was rebuilt or the engine was just selected.
    fn reallocate_delta(&mut self, mut profiler: Option<&mut bass_obs::SpanProfiler>) {
        let mut clock = bass_obs::PhaseClock::new(profiler.is_some());
        let link_count = self.topo.link_count();
        if self.index.dirty {
            self.index.rebuild(link_count, &self.flows, &self.egress_caps, self.max_node);
            self.delta_valid = false;
            self.caps_valid = false;
            self.demands_valid = false;
            self.pending_full = true;
            clock.lap(profiler.as_deref_mut(), "mesh.index_rebuild");
        }

        let caps_partial =
            self.dirty_tracking && self.caps_valid && self.link_cap_bps.len() == link_count;
        if caps_partial {
            self.refresh_constraint_caps_dirty();
            clock.lap(profiler.as_deref_mut(), "mesh.cap_diff");
        } else {
            self.refresh_constraint_caps(link_count);
            clock.lap(profiler.as_deref_mut(), "mesh.trace_refresh");
        }

        let demands_partial = self.refresh_demands();
        if demands_partial {
            clock.lap(profiler.as_deref_mut(), "mesh.demand_diff");
        }
        if !self.delta_valid {
            // Full canonical fill, then baseline the snapshots.
            max_min_allocate_components(
                &self.demands_scratch,
                &self.index.constraints,
                &self.index.flow_cons_off,
                &self.index.flow_cons,
                &self.index.comps,
                &mut self.scratch,
                &mut self.rates_bps,
            );
            self.prev_caps_bps.clear();
            self.prev_caps_bps
                .extend(self.index.constraints.iter().map(|c| c.capacity.as_bps()));
            self.prev_demands_bps.clear();
            self.prev_demands_bps
                .extend(self.demands_scratch.iter().map(|d| d.as_bps()));
            self.delta_valid = true;
            self.clear_dirty_flows();
            clock.lap(profiler.as_deref_mut(), "mesh.delta_fill");
            self.allocation.assign(&self.index.ids, &self.rates_bps);
            self.update_usage_views(link_count);
            clock.lap(profiler, "mesh.usage_views");
            return;
        }

        // Dirty-component scan: a constraint whose capacity moved or a
        // flow whose demand moved (backlog drain included) dirties its
        // component. Unconstrained flows are re-granted directly. With
        // the dirty sets live the scan touches only the links the
        // capacity refresh observed moving and the flows in the dirty
        // demand set — O(dirty), not O(F + L).
        self.comp_dirty.clear();
        self.comp_dirty.resize(self.index.comps.component_count(), false);
        self.dirty_comps.clear();
        if caps_partial {
            for k in 0..self.cap_changed.len() {
                let ci = self.cap_changed[k] as usize;
                let bps = self.index.constraints[ci].capacity.as_bps();
                if bps.to_bits() != self.prev_caps_bps[ci].to_bits() {
                    self.prev_caps_bps[ci] = bps;
                    if !self.index.constraints[ci].members.is_empty() {
                        let comp = self.index.comps.constraint_component(ci);
                        if !self.comp_dirty[comp as usize] {
                            self.comp_dirty[comp as usize] = true;
                            self.dirty_comps.push(comp);
                        }
                    }
                }
            }
        } else {
            for (ci, c) in self.index.constraints.iter().enumerate() {
                let bps = c.capacity.as_bps();
                if bps.to_bits() != self.prev_caps_bps[ci].to_bits() {
                    self.prev_caps_bps[ci] = bps;
                    if !c.members.is_empty() {
                        let comp = self.index.comps.constraint_component(ci);
                        if !self.comp_dirty[comp as usize] {
                            self.comp_dirty[comp as usize] = true;
                            self.dirty_comps.push(comp);
                        }
                    }
                }
            }
        }
        if demands_partial {
            for k in 0..self.dirty_flows.len() {
                let i = self.dirty_flows[k] as usize;
                let bps = self.demands_scratch[i].as_bps();
                if bps.to_bits() != self.prev_demands_bps[i].to_bits() {
                    self.prev_demands_bps[i] = bps;
                    let comp = self.index.comps.flow_component(i);
                    if comp == NO_COMPONENT {
                        self.rates_bps[i] = unconstrained_rate(self.demands_scratch[i]);
                        self.touch_flow(i);
                    } else if !self.comp_dirty[comp as usize] {
                        self.comp_dirty[comp as usize] = true;
                        self.dirty_comps.push(comp);
                    }
                }
            }
        } else {
            for (i, d) in self.demands_scratch.iter().enumerate() {
                let bps = d.as_bps();
                if bps.to_bits() != self.prev_demands_bps[i].to_bits() {
                    self.prev_demands_bps[i] = bps;
                    let comp = self.index.comps.flow_component(i);
                    if comp == NO_COMPONENT {
                        self.rates_bps[i] = unconstrained_rate(*d);
                        if i < self.pending_flow_flag.len() {
                            if !self.pending_flow_flag[i] {
                                self.pending_flow_flag[i] = true;
                                self.pending_flows.push(i as u32);
                            }
                        } else {
                            self.pending_full = true;
                        }
                    } else if !self.comp_dirty[comp as usize] {
                        self.comp_dirty[comp as usize] = true;
                        self.dirty_comps.push(comp);
                    }
                }
            }
        }
        self.clear_dirty_flows();
        clock.lap(profiler.as_deref_mut(), "mesh.component_scan");

        if self.alloc_jobs > 1 && self.dirty_comps.len() > 1 {
            self.shard_fill();
            clock.lap(profiler.as_deref_mut(), "mesh.shard_fill");
        } else {
            for k in 0..self.dirty_comps.len() {
                refill_component_into(
                    self.dirty_comps[k],
                    &self.demands_scratch,
                    &self.index.constraints,
                    &self.index.flow_cons_off,
                    &self.index.flow_cons,
                    &self.index.comps,
                    &mut self.scratch,
                    &mut self.rates_bps,
                );
            }
            clock.lap(profiler.as_deref_mut(), "mesh.delta_fill");
        }

        let n = self.index.ids.len();
        // The partial tail (per-slot allocation writes, per-member usage
        // re-sums, O(dirty) queue pass) only pays off while the dirty
        // slice is a minority of the mesh: each partial slot costs a map
        // lookup where the full pass pays an in-order walk. Past roughly
        // a quarter of the flows the straight full tail is cheaper, so
        // take it — both tails produce bit-identical state by
        // construction, this is purely a cost dispatch.
        let refilled: usize = (0..self.dirty_comps.len())
            .map(|k| self.index.comps.flows_of(self.dirty_comps[k]).len())
            .sum();
        let minority = (self.pending_flows.len() + refilled) * 4 < n;
        if self.dirty_tracking
            && !self.pending_full
            && minority
            && self.pending_flow_flag.len() == n
            && self.allocation.len() == n
        {
            // Queue every refilled flow for activity re-evaluation; the
            // same list drives the O(dirty) allocation-map write.
            for k in 0..self.dirty_comps.len() {
                let comp = self.dirty_comps[k];
                for &i in self.index.comps.flows_of(comp) {
                    if !self.pending_flow_flag[i] {
                        self.pending_flow_flag[i] = true;
                        self.pending_flows.push(i as u32);
                    }
                }
            }
            self.allocation
                .write_slots(&self.index.ids, &self.rates_bps, &self.pending_flows);
            self.update_usage_views_delta(link_count);
            if self.usage_check_every > 0 {
                self.usage_ticks += 1;
                if self.usage_ticks >= self.usage_check_every {
                    self.usage_ticks = 0;
                    self.audit_usage_views(link_count);
                }
            }
            clock.lap(profiler, "mesh.usage_delta");
        } else {
            self.pending_full = true;
            self.allocation.assign(&self.index.ids, &self.rates_bps);
            self.update_usage_views(link_count);
            clock.lap(profiler, "mesh.usage_views");
        }
    }

    /// Fans this tick's dirty components out across the persistent
    /// [`ShardPool`] (worker *w* takes components `w, w + jobs, …` of
    /// the dirty list). Each worker fills into its own full-length rate
    /// buffer with its own scratch; the caller then scatters exactly
    /// each component's slots back into `rates_bps`. Because every
    /// component fill is deterministic and components write disjoint
    /// slots, the result is byte-identical to the serial refill for any
    /// job count — the same ordered-slot argument the campaign runner
    /// uses across replicas, applied inside one tick.
    fn shard_fill(&mut self) {
        let jobs = self.alloc_jobs.min(self.dirty_comps.len());
        // The pool moves out of `self` for the duration of the fill so
        // its workers can be driven while the job inputs stay borrowed
        // from `self`.
        let mut pool = std::mem::take(&mut self.shard_pool);
        pool.ensure(jobs);
        let inputs = ShardInputs {
            dirty: (self.dirty_comps.as_ptr(), self.dirty_comps.len()),
            demands: (self.demands_scratch.as_ptr(), self.demands_scratch.len()),
            constraints: (self.index.constraints.as_ptr(), self.index.constraints.len()),
            flow_cons_off: (self.index.flow_cons_off.as_ptr(), self.index.flow_cons_off.len()),
            flow_cons: (self.index.flow_cons.as_ptr(), self.index.flow_cons.len()),
            comps: &self.index.comps,
            jobs,
            n: self.rates_bps.len(),
        };
        for (w, worker) in pool.workers[..jobs].iter_mut().enumerate() {
            let job = ShardJob {
                inputs,
                w,
                scratch: std::mem::take(&mut worker.scratch),
                rates: std::mem::take(&mut worker.rates),
            };
            worker
                .job_tx
                .as_ref()
                .expect("live pool workers keep their sender")
                .send(job)
                .expect("shard worker alive");
        }
        // Blocking on every completion receipt before touching any
        // borrowed input again is what makes the raw pointers inside
        // `ShardInputs` sound: no worker outlives this loop with a
        // pointer in hand.
        for worker in &mut pool.workers[..jobs] {
            let (scratch, rates) = worker.done_rx.recv().expect("shard worker alive");
            worker.scratch = scratch;
            worker.rates = rates;
        }
        for (k, &comp) in self.dirty_comps.iter().enumerate() {
            let src = &pool.workers[k % jobs].rates;
            for &i in self.index.comps.flows_of(comp) {
                self.rates_bps[i] = src[i];
            }
        }
        self.shard_pool = pool;
    }

    /// The pre-incremental reference path, kept verbatim (fresh buffers,
    /// per-tick membership scans, dense oracle) so regressions can
    /// replay both engines and the `scale` bench can measure the
    /// speedup. See [`AllocEngine::Dense`].
    fn reallocate_dense(&mut self) {
        let ids: Vec<FlowId> = self.flows.keys().copied().collect();
        let demands: Vec<Bandwidth> = ids
            .iter()
            .map(|id| {
                let f = &self.flows[id];
                if !f.routable {
                    // No route: the flow transmits nothing at all.
                    return Bandwidth::ZERO;
                }
                let drain = f.queue.backlog().rate_over(SimDuration::from_secs(1));
                f.spec.demand + drain
            })
            .collect();

        self.link_cap_bps.resize(self.topo.link_count(), 0.0);
        let mut constraints = Vec::new();
        // One constraint per link.
        for (lid, _) in self.topo.links() {
            let capacity = self.effective_link_capacity(lid);
            let bps = capacity.as_bps();
            if bps.to_bits() != self.link_cap_bps[lid.0].to_bits() {
                // Keep the capacity-change log live under the reference
                // engine too (the controller's score cache reads it).
                self.link_cap_bps[lid.0] = bps;
                self.cap_epoch += 1;
                if self.cap_log.len() >= CAP_LOG_LIMIT {
                    self.cap_log.clear();
                    self.cap_log_floor = self.cap_epoch - 1;
                }
                self.cap_log.push((self.cap_epoch, lid.0 as u32));
            }
            let members: Vec<usize> = ids
                .iter()
                .enumerate()
                .filter(|(_, id)| self.flows[id].links.contains(&lid))
                .map(|(i, _)| i)
                .collect();
            constraints.push(Constraint { capacity, members });
        }
        // One constraint per node egress cap.
        for (&node, &cap) in &self.egress_caps {
            let members: Vec<usize> = ids
                .iter()
                .enumerate()
                .filter(|(_, id)| self.flows[id].egress.contains(&node))
                .map(|(i, _)| i)
                .collect();
            constraints.push(Constraint { capacity: cap, members });
        }

        let rates = max_min_allocate_dense(&demands, &constraints);
        let mut allocation = FlowAllocation::default();
        for (i, id) in ids.iter().enumerate() {
            allocation.insert(*id, rates[i]);
        }

        // Per-link and per-node-egress usage for monitoring.
        self.link_used_bps = vec![0.0; self.topo.link_count()];
        self.egress_used_bps = vec![0.0; self.max_node];
        for (i, id) in ids.iter().enumerate() {
            for lid in &self.flows[id].links {
                self.link_used_bps[lid.0] += rates[i].as_bps();
            }
            for &node in &self.flows[id].egress {
                self.egress_used_bps[node.0 as usize] += rates[i].as_bps();
            }
        }
        self.allocation = allocation;
        // The reference path maintains none of the dirty-set
        // bookkeeping: invalidate it all so a later engine switch starts
        // from full refreshes.
        self.caps_valid = false;
        self.demands_valid = false;
        self.pending_full = true;
    }

    /// [`advance`](Self::advance) that additionally reports to a journal:
    /// per-link [`LinkCapacityChanged`](bass_obs::Event::LinkCapacityChanged)
    /// events (cause `"trace"`, ≥1% relative moves) and a
    /// [`FlowRateRecomputed`](bass_obs::Event::FlowRateRecomputed) event
    /// whenever the allocation picture materially changed.
    pub fn advance_observed(&mut self, dt: SimDuration, journal: Option<&mut bass_obs::Journal>) {
        self.advance_profiled(dt, journal, None);
    }

    /// Diffs the current effective link capacities against the last
    /// journal-reported snapshot and emits a
    /// [`LinkCapacityChanged`](bass_obs::Event::LinkCapacityChanged)
    /// event for every link that moved by more than 1% (relative).
    ///
    /// The first call only establishes the baseline and emits nothing.
    /// `cause` labels what moved the capacity — `"trace"` for vagary
    /// playback during [`advance_observed`](Self::advance_observed),
    /// `"scenario"` when the emulator applies a scripted restriction.
    pub fn emit_capacity_changes(&mut self, journal: &mut bass_obs::Journal, cause: &str) {
        let caps: Vec<f64> = (0..self.topo.link_count())
            .map(|i| self.effective_link_capacity(LinkId(i)).as_mbps())
            .collect();
        match self.obs_cap_snapshot.as_mut() {
            None => self.obs_cap_snapshot = Some(caps),
            Some(prev) => {
                for (lid, link) in self.topo.links() {
                    let old = prev[lid.0];
                    let new = caps[lid.0];
                    if (new - old).abs() / old.abs().max(1e-9) > 0.01 {
                        journal.record(bass_obs::Event::LinkCapacityChanged {
                            t_s: self.now.as_secs_f64(),
                            a: link.a.0,
                            b: link.b.0,
                            old_mbps: old,
                            new_mbps: new,
                            cause: cause.to_string(),
                        });
                    }
                }
                *prev = caps;
            }
        }
    }

    /// Emits a [`FlowRateRecomputed`](bass_obs::Event::FlowRateRecomputed)
    /// event if the flow count changed or total demand/allocation moved
    /// by more than 0.1% since the last reported picture.
    fn emit_flow_rate_recompute(&mut self, journal: &mut bass_obs::Journal) {
        fn moved(old: f64, new: f64) -> bool {
            (new - old).abs() / old.abs().max(1e-9) > 0.001
        }
        let flows = self.flows.len() as u32;
        let demand_mbps: f64 = self.flows.values().map(|f| f.spec.demand.as_mbps()).sum();
        let allocated_mbps: f64 = self
            .flows
            .keys()
            .map(|id| self.allocation.rate(*id).as_mbps())
            .sum();
        let changed = match self.obs_flow_sig {
            None => flows > 0,
            Some((f, d, a)) => f != flows || moved(d, demand_mbps) || moved(a, allocated_mbps),
        };
        if changed {
            let saturated_links = (0..self.topo.link_count())
                .filter(|&i| {
                    let cap = self.effective_link_capacity(LinkId(i)).as_bps();
                    cap > 0.0 && self.link_used_bps[i] >= 0.999 * cap
                })
                .count() as u32;
            journal.record(bass_obs::Event::FlowRateRecomputed {
                t_s: self.now.as_secs_f64(),
                flows,
                demand_mbps,
                allocated_mbps,
                saturated_links,
            });
            self.obs_flow_sig = Some((flows, demand_mbps, allocated_mbps));
        }
    }

    // ----- queries ----------------------------------------------------------

    /// The rate currently allocated to a flow (zero for unknown flows).
    pub fn flow_rate(&self, id: FlowId) -> Bandwidth {
        self.allocation.rate(id)
    }

    /// A flow's goodput: the smaller of demand and allocation.
    pub fn flow_goodput(&self, id: FlowId) -> Bandwidth {
        match self.flows.get(&id) {
            Some(f) => f.spec.demand.min(self.allocation.rate(id)),
            None => Bandwidth::ZERO,
        }
    }

    /// Loss fraction for a flow treated as real-time traffic.
    pub fn flow_loss(&self, id: FlowId) -> f64 {
        match self.flows.get(&id) {
            Some(f) => FlowQueue::loss_fraction(f.spec.demand, self.allocation.rate(id)),
            None => 0.0,
        }
    }

    /// End-to-end delay to deliver a message of `size` on a flow at the
    /// current allocation (queueing + serialization + hop latency).
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownFlow`] for unknown ids.
    pub fn flow_message_delay(&self, id: FlowId, size: DataSize) -> Result<SimDuration, MeshError> {
        let flow = self.flows.get(&id).ok_or(MeshError::UnknownFlow(id))?;
        if !flow.routable {
            // Severed by faults: nothing is delivered until a route
            // returns, so report the dead-path cap.
            return Ok(crate::queueing::MAX_DELAY);
        }
        let hops = flow.links.len();
        if hops == 0 {
            // Loopback: pure local latency plus negligible copy time.
            return Ok(self.hop_latency.for_hops(0));
        }
        let capacity = flow
            .links
            .iter()
            .map(|l| self.effective_link_capacity(*l))
            .fold(Bandwidth::from_bps(f64::INFINITY), Bandwidth::min);
        let allocated = self.allocation.rate(id);
        Ok(flow.queue.transfer_delay(size, capacity, allocated) + self.hop_latency.for_hops(hops))
    }

    /// A flow's current queue backlog.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownFlow`] for unknown ids.
    pub fn flow_backlog(&self, id: FlowId) -> Result<DataSize, MeshError> {
        self.flows
            .get(&id)
            .map(|f| f.queue.backlog())
            .ok_or(MeshError::UnknownFlow(id))
    }

    /// Current capacity of the link between `a` and `b`, as a probe
    /// would observe it: the link's own capacity further limited by any
    /// egress cap at either endpoint (an interface-level `tc` limit
    /// constrains every link of that node).
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownLink`] if no such link exists.
    pub fn link_capacity(&self, a: NodeId, b: NodeId) -> Result<Bandwidth, MeshError> {
        let lid = self.topo.find_link(a, b).ok_or(MeshError::UnknownLink(a, b))?;
        let mut cap = self.effective_link_capacity(lid);
        for n in [a, b] {
            if let Some(&c) = self.egress_caps.get(&n) {
                cap = cap.min(c);
            }
        }
        Ok(cap)
    }

    /// Allocated traffic currently crossing the link between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownLink`] if no such link exists.
    pub fn link_usage(&self, a: NodeId, b: NodeId) -> Result<Bandwidth, MeshError> {
        let lid = self.topo.find_link(a, b).ok_or(MeshError::UnknownLink(a, b))?;
        Ok(Bandwidth::from_bps(self.link_used_bps[lid.0]))
    }

    /// Spare capacity on the link between `a` and `b`: the link's own
    /// headroom, further limited by the spare egress at either capped
    /// endpoint (what a probe over this link could actually push).
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownLink`] if no such link exists.
    pub fn link_available(&self, a: NodeId, b: NodeId) -> Result<Bandwidth, MeshError> {
        let lid = self.topo.find_link(a, b).ok_or(MeshError::UnknownLink(a, b))?;
        let mut avail = self
            .effective_link_capacity(lid)
            .saturating_sub(Bandwidth::from_bps(self.link_used_bps[lid.0]));
        for n in [a, b] {
            if let Some(&c) = self.egress_caps.get(&n) {
                let used = self.egress_used(n);
                avail = avail.min(c.saturating_sub(Bandwidth::from_bps(used)));
            }
        }
        Ok(avail)
    }

    /// Allocated bps currently leaving `node` (zero when nothing does).
    fn egress_used(&self, node: NodeId) -> f64 {
        self.egress_used_bps.get(node.0 as usize).copied().unwrap_or(0.0)
    }

    /// The routed node path from `src` to `dst` (the traceroute view).
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::Unreachable`] when no route exists.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Result<&[NodeId], MeshError> {
        self.routes
            .path(src, dst)
            .ok_or(MeshError::Unreachable(src, dst))
    }

    /// Capacity for traffic sent from `u` across the link to `v`: the
    /// link's capacity limited by `u`'s egress cap (the transmitter's
    /// interface shaping), but not by `v`'s — receiving is not shaped.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownLink`] if no such link exists.
    pub fn directed_link_capacity(&self, u: NodeId, v: NodeId) -> Result<Bandwidth, MeshError> {
        let lid = self.topo.find_link(u, v).ok_or(MeshError::UnknownLink(u, v))?;
        let mut cap = self.effective_link_capacity(lid);
        if let Some(&c) = self.egress_caps.get(&u) {
            cap = cap.min(c);
        }
        Ok(cap)
    }

    /// Spare bandwidth for new traffic sent from `u` across the link to
    /// `v`: the link's headroom limited by `u`'s spare egress.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownLink`] if no such link exists.
    pub fn directed_link_available(&self, u: NodeId, v: NodeId) -> Result<Bandwidth, MeshError> {
        let lid = self.topo.find_link(u, v).ok_or(MeshError::UnknownLink(u, v))?;
        let mut avail = self
            .effective_link_capacity(lid)
            .saturating_sub(Bandwidth::from_bps(self.link_used_bps[lid.0]));
        if let Some(&c) = self.egress_caps.get(&u) {
            let used = self.egress_used(u);
            avail = avail.min(c.saturating_sub(Bandwidth::from_bps(used)));
        }
        Ok(avail)
    }

    /// Bottleneck *capacity* along the routed path from `src` to `dst` —
    /// what a max-capacity probe of the path reports. Directional: only
    /// each hop's transmitting side's egress cap applies.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::Unreachable`] when no route exists.
    pub fn path_bottleneck_capacity(&self, src: NodeId, dst: NodeId) -> Result<Bandwidth, MeshError> {
        if src == dst {
            return Ok(Bandwidth::from_bps(f64::INFINITY));
        }
        let path = self
            .routes
            .path(src, dst)
            .ok_or(MeshError::Unreachable(src, dst))?;
        let mut bottleneck = Bandwidth::from_bps(f64::INFINITY);
        for w in path.windows(2) {
            bottleneck = bottleneck.min(self.directed_link_capacity(w[0], w[1])?);
        }
        Ok(bottleneck)
    }

    /// Bottleneck *available* (unused) bandwidth along the routed path —
    /// what a headroom probe observes. Directional, like
    /// [`Mesh::path_bottleneck_capacity`].
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::Unreachable`] when no route exists.
    pub fn path_available(&self, src: NodeId, dst: NodeId) -> Result<Bandwidth, MeshError> {
        if src == dst {
            return Ok(Bandwidth::from_bps(f64::INFINITY));
        }
        let path = self
            .routes
            .path(src, dst)
            .ok_or(MeshError::Unreachable(src, dst))?;
        let mut avail = Bandwidth::from_bps(f64::INFINITY);
        for w in path.windows(2) {
            avail = avail.min(self.directed_link_available(w[0], w[1])?);
        }
        Ok(avail)
    }

    /// Sum of current capacities of all links incident to `node` — the
    /// "combined capacity across all of the node's links" used by BASS's
    /// node ranking.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownNode`] if the node does not exist.
    pub fn node_total_link_capacity(&self, node: NodeId) -> Result<Bandwidth, MeshError> {
        if !self.topo.contains_node(node) {
            return Err(MeshError::UnknownNode(node));
        }
        Ok(self
            .topo
            .incident_links(node)
            .into_iter()
            .map(|l| self.effective_link_capacity(l))
            .sum())
    }
}

/// A persistent pool of shard-fill worker threads.
///
/// The first sharded implementation spawned fresh scoped threads every
/// tick; at 1000 nodes the per-tick spawn/join cost exceeded the fill
/// itself and made `--alloc-jobs 4` *slower* than the serial refill
/// (412 vs 477 ticks/s in `BENCH_mesh.json`). The pool spawns each
/// worker once, on first use, and reuses it — plus its owned
/// [`AllocScratch`] and rate buffer, which round-trip through the job
/// channels — for every subsequent tick. Workers block on their job
/// channel between ticks and exit when the pool drops their sender.
#[derive(Default)]
struct ShardPool {
    workers: Vec<ShardWorker>,
}

/// One pooled worker thread and its parked per-worker buffers.
struct ShardWorker {
    /// `None` only while the pool is dropping (dropping the sender is
    /// what unblocks the worker's receive loop so it can exit).
    job_tx: Option<std::sync::mpsc::Sender<ShardJob>>,
    /// Completion receipts carrying the worker's buffers back.
    done_rx: std::sync::mpsc::Receiver<(AllocScratch, Vec<f64>)>,
    handle: Option<std::thread::JoinHandle<()>>,
    /// Allocator scratch parked between ticks.
    scratch: AllocScratch,
    /// Full-length rate buffer parked between ticks; only the slots of
    /// the components this worker filled are ever read back.
    rates: Vec<f64>,
}

/// Borrowed inputs of one sharded fill, shipped to every worker as raw
/// `(pointer, len)` pairs because `Mesh` cannot lend lifetimes across a
/// channel. Soundness is enforced by [`Mesh::shard_fill`]: it blocks on
/// every worker's completion receipt before returning, and nothing
/// mutates (or frees) the pointees while a job is in flight, so each
/// pointer outlives every dereference and is only ever read.
#[derive(Clone, Copy)]
struct ShardInputs {
    dirty: (*const u32, usize),
    demands: (*const Bandwidth, usize),
    constraints: (*const Constraint, usize),
    flow_cons_off: (*const usize, usize),
    flow_cons: (*const usize, usize),
    comps: *const ComponentIndex,
    /// Worker count of this fill; worker `w` takes dirty components
    /// `w, w + jobs, …`.
    jobs: usize,
    /// Flow count — the length workers resize their rate buffers to.
    n: usize,
}

// SAFETY: the raw pointers are only dereferenced (read-only) between
// job send and completion receipt, during which `shard_fill` keeps the
// owning `Mesh` borrowed and blocked — see the `ShardInputs` docs.
unsafe impl Send for ShardInputs {}

/// One tick's work order for one pooled worker.
struct ShardJob {
    inputs: ShardInputs,
    /// This worker's index within the fill.
    w: usize,
    scratch: AllocScratch,
    rates: Vec<f64>,
}

/// The pooled worker loop: fill the assigned components of each job
/// into the owned rate buffer, send the buffers back, block for the
/// next job. Ends when the job sender drops (pool drop) or the receipt
/// receiver is gone.
fn shard_worker_loop(
    jobs_rx: std::sync::mpsc::Receiver<ShardJob>,
    done_tx: std::sync::mpsc::Sender<(AllocScratch, Vec<f64>)>,
) {
    while let Ok(ShardJob { inputs, w, mut scratch, mut rates }) = jobs_rx.recv() {
        // SAFETY: see `ShardInputs` — the pointees are alive and
        // unmutated until the receipt below is received.
        let (dirty, demands, constraints, flow_cons_off, flow_cons, comps) = unsafe {
            (
                std::slice::from_raw_parts(inputs.dirty.0, inputs.dirty.1),
                std::slice::from_raw_parts(inputs.demands.0, inputs.demands.1),
                std::slice::from_raw_parts(inputs.constraints.0, inputs.constraints.1),
                std::slice::from_raw_parts(inputs.flow_cons_off.0, inputs.flow_cons_off.1),
                std::slice::from_raw_parts(inputs.flow_cons.0, inputs.flow_cons.1),
                &*inputs.comps,
            )
        };
        // Stale values outside this worker's components are never read:
        // each fill resets its slots first.
        rates.resize(inputs.n, 0.0);
        let mut k = w;
        while k < dirty.len() {
            refill_component_into(
                dirty[k],
                demands,
                constraints,
                flow_cons_off,
                flow_cons,
                comps,
                &mut scratch,
                &mut rates,
            );
            k += inputs.jobs;
        }
        if done_tx.send((scratch, rates)).is_err() {
            return;
        }
    }
}

impl ShardPool {
    /// Grows the pool to at least `jobs` live workers.
    fn ensure(&mut self, jobs: usize) {
        while self.workers.len() < jobs {
            let (job_tx, job_rx) = std::sync::mpsc::channel();
            let (done_tx, done_rx) = std::sync::mpsc::channel();
            let handle = std::thread::Builder::new()
                .name("bass-shard".into())
                .spawn(move || shard_worker_loop(job_rx, done_tx))
                .expect("spawning a shard worker succeeds");
            self.workers.push(ShardWorker {
                job_tx: Some(job_tx),
                done_rx,
                handle: Some(handle),
                scratch: AllocScratch::default(),
                rates: Vec::new(),
            });
        }
    }
}

impl Clone for ShardPool {
    /// Threads are never cloned: a cloned mesh starts with an empty
    /// pool and respawns workers on its first sharded fill.
    fn clone(&self) -> Self {
        ShardPool::default()
    }
}

impl fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardPool").field("workers", &self.workers.len()).finish()
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Drop every sender first so all workers unblock…
        for w in &mut self.workers {
            w.job_tx = None;
        }
        // …then reap them.
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bass_trace::{BandwidthTrace, StepScript};

    fn mbps(x: f64) -> Bandwidth {
        Bandwidth::from_mbps(x)
    }

    fn approx(a: Bandwidth, b: f64) {
        assert!((a.as_mbps() - b).abs() < 1e-6, "expected {b}, got {}", a.as_mbps());
    }

    fn three_node_lan() -> Mesh {
        Mesh::with_uniform_capacity(Topology::full_mesh(3), mbps(100.0)).unwrap()
    }

    #[test]
    fn rejects_disconnected_topology() {
        let mut topo = Topology::new();
        topo.add_node(NodeId(0)).unwrap();
        topo.add_node(NodeId(1)).unwrap();
        assert_eq!(Mesh::new(topo).unwrap_err(), MeshError::NotConnected);
    }

    #[test]
    fn single_flow_gets_demand() {
        let mut mesh = three_node_lan();
        let f = mesh.add_flow(NodeId(0), NodeId(1), mbps(30.0)).unwrap();
        mesh.advance(SimDuration::from_millis(100));
        approx(mesh.flow_rate(f), 30.0);
        approx(mesh.flow_goodput(f), 30.0);
        assert_eq!(mesh.flow_loss(f), 0.0);
    }

    #[test]
    fn flows_share_a_link_fairly() {
        let mut mesh = three_node_lan();
        let f1 = mesh.add_flow(NodeId(0), NodeId(1), mbps(100.0)).unwrap();
        let f2 = mesh.add_flow(NodeId(0), NodeId(1), mbps(100.0)).unwrap();
        // Both flows also share node 0's implicit egress only if capped;
        // here only the 100 Mbps link binds → 50/50.
        mesh.advance(SimDuration::from_millis(100));
        approx(mesh.flow_rate(f1), 50.0);
        approx(mesh.flow_rate(f2), 50.0);
    }

    #[test]
    fn link_cap_behaves_like_tc() {
        let mut mesh = three_node_lan();
        let f = mesh.add_flow(NodeId(1), NodeId(2), mbps(100.0)).unwrap();
        mesh.set_link_cap(NodeId(1), NodeId(2), Some(mbps(25.0))).unwrap();
        mesh.advance(SimDuration::from_millis(100));
        approx(mesh.flow_rate(f), 25.0);
        approx(mesh.link_capacity(NodeId(1), NodeId(2)).unwrap(), 25.0);
        mesh.set_link_cap(NodeId(1), NodeId(2), None).unwrap();
        mesh.advance(SimDuration::from_millis(100));
        approx(mesh.flow_rate(f), 100.0);
    }

    #[test]
    fn node_egress_cap_limits_all_outgoing_flows() {
        // The paper's Fig. 3: restrict node 2's outgoing traffic.
        let mut mesh = three_node_lan();
        let f1 = mesh.add_flow(NodeId(2), NodeId(0), mbps(100.0)).unwrap();
        let f2 = mesh.add_flow(NodeId(2), NodeId(1), mbps(100.0)).unwrap();
        mesh.set_node_egress_cap(NodeId(2), Some(mbps(30.0))).unwrap();
        mesh.advance(SimDuration::from_millis(100));
        approx(mesh.flow_rate(f1), 15.0);
        approx(mesh.flow_rate(f2), 15.0);
        // Traffic *into* node 2 is unaffected.
        let f3 = mesh.add_flow(NodeId(0), NodeId(2), mbps(60.0)).unwrap();
        mesh.advance(SimDuration::from_millis(100));
        approx(mesh.flow_rate(f3), 60.0);
    }

    #[test]
    fn loopback_flow_is_unconstrained() {
        let mut mesh = three_node_lan();
        let f = mesh.add_flow(NodeId(0), NodeId(0), mbps(10_000.0)).unwrap();
        mesh.advance(SimDuration::from_millis(100));
        approx(mesh.flow_rate(f), 10_000.0);
        let d = mesh
            .flow_message_delay(f, DataSize::from_megabytes(1))
            .unwrap();
        assert_eq!(d, SimDuration::from_micros(50));
    }

    #[test]
    fn trace_driven_capacity_changes_over_time() {
        let mut topo = Topology::new();
        topo.add_node(NodeId(0)).unwrap();
        topo.add_node(NodeId(1)).unwrap();
        topo.add_link(NodeId(0), NodeId(1)).unwrap();
        let trace: BandwidthTrace = StepScript::new("l", mbps(50.0))
            .restrict(SimTime::from_secs(10), SimDuration::from_secs(10), mbps(5.0))
            .compile(SimDuration::from_secs(60));
        let mut mesh = Mesh::new(topo).unwrap();
        mesh.set_link_source(NodeId(0), NodeId(1), CapacitySource::Trace(trace))
            .unwrap();
        let f = mesh.add_flow(NodeId(0), NodeId(1), mbps(100.0)).unwrap();
        mesh.advance(SimDuration::from_secs(5));
        approx(mesh.flow_rate(f), 50.0);
        mesh.advance(SimDuration::from_secs(10)); // now = 15s, inside restriction
        approx(mesh.flow_rate(f), 5.0);
        assert!(mesh.flow_loss(f) > 0.9);
        mesh.advance(SimDuration::from_secs(10)); // now = 25s, lifted
        approx(mesh.flow_rate(f), 50.0);
    }

    #[test]
    fn multi_hop_flow_consumes_all_path_links() {
        // Line 0-1-2: flow 0→2 crosses both links.
        let mut topo = Topology::new();
        for i in 0..3 {
            topo.add_node(NodeId(i)).unwrap();
        }
        topo.add_link(NodeId(0), NodeId(1)).unwrap();
        topo.add_link(NodeId(1), NodeId(2)).unwrap();
        let mut mesh = Mesh::with_uniform_capacity(topo, mbps(10.0)).unwrap();
        let f = mesh.add_flow(NodeId(0), NodeId(2), mbps(100.0)).unwrap();
        mesh.advance(SimDuration::from_millis(100));
        approx(mesh.flow_rate(f), 10.0);
        approx(mesh.link_usage(NodeId(0), NodeId(1)).unwrap(), 10.0);
        approx(mesh.link_usage(NodeId(1), NodeId(2)).unwrap(), 10.0);
        approx(mesh.link_available(NodeId(0), NodeId(1)).unwrap(), 0.0);
    }

    #[test]
    fn path_queries() {
        let mut mesh = three_node_lan();
        let _f = mesh.add_flow(NodeId(0), NodeId(1), mbps(40.0)).unwrap();
        mesh.advance(SimDuration::from_millis(100));
        approx(mesh.path_bottleneck_capacity(NodeId(0), NodeId(1)).unwrap(), 100.0);
        approx(mesh.path_available(NodeId(0), NodeId(1)).unwrap(), 60.0);
        assert_eq!(mesh.path(NodeId(0), NodeId(1)).unwrap(), &[NodeId(0), NodeId(1)]);
        assert!(mesh
            .path_available(NodeId(0), NodeId(0))
            .unwrap()
            .as_bps()
            .is_infinite());
    }

    #[test]
    fn node_total_link_capacity_sums_incident_links() {
        let mesh = three_node_lan();
        approx(mesh.node_total_link_capacity(NodeId(0)).unwrap(), 200.0);
        assert_eq!(
            mesh.node_total_link_capacity(NodeId(9)).unwrap_err(),
            MeshError::UnknownNode(NodeId(9))
        );
    }

    #[test]
    fn backlog_grows_under_restriction_and_drains_after() {
        let mut mesh = three_node_lan();
        let f = mesh.add_flow(NodeId(0), NodeId(1), mbps(50.0)).unwrap();
        mesh.set_link_cap(NodeId(0), NodeId(1), Some(mbps(10.0))).unwrap();
        for _ in 0..10 {
            mesh.advance(SimDuration::from_secs(1));
        }
        let backlog = mesh.flow_backlog(f).unwrap();
        assert!(backlog.as_bytes() > 0, "backlog should accumulate");
        let delay = mesh.flow_message_delay(f, DataSize::from_kilobytes(10)).unwrap();
        assert!(delay.as_secs_f64() > 10.0, "delay should include drain: {delay}");
        // Lift restriction and stop offering traffic: the backlog drains.
        mesh.set_link_cap(NodeId(0), NodeId(1), None).unwrap();
        mesh.set_flow_demand(f, Bandwidth::ZERO).unwrap();
        for _ in 0..60 {
            mesh.advance(SimDuration::from_secs(1));
        }
        assert_eq!(mesh.flow_backlog(f).unwrap(), DataSize::ZERO);
    }

    #[test]
    fn error_paths() {
        let mut mesh = three_node_lan();
        assert!(matches!(
            mesh.add_flow(NodeId(0), NodeId(9), mbps(1.0)),
            Err(MeshError::UnknownNode(_))
        ));
        assert!(matches!(
            mesh.set_flow_demand(FlowId(99), mbps(1.0)),
            Err(MeshError::UnknownFlow(_))
        ));
        assert!(matches!(
            mesh.remove_flow(FlowId(99)),
            Err(MeshError::UnknownFlow(_))
        ));
        assert!(matches!(
            mesh.link_capacity(NodeId(0), NodeId(9)),
            Err(MeshError::UnknownLink(_, _))
        ));
        assert!(matches!(
            mesh.set_node_egress_cap(NodeId(9), Some(mbps(1.0))),
            Err(MeshError::UnknownNode(_))
        ));
    }

    #[test]
    fn remove_flow_frees_capacity() {
        let mut mesh = three_node_lan();
        let f1 = mesh.add_flow(NodeId(0), NodeId(1), mbps(100.0)).unwrap();
        let f2 = mesh.add_flow(NodeId(0), NodeId(1), mbps(100.0)).unwrap();
        mesh.advance(SimDuration::from_millis(100));
        approx(mesh.flow_rate(f2), 50.0);
        mesh.remove_flow(f1).unwrap();
        mesh.advance(SimDuration::from_millis(100));
        approx(mesh.flow_rate(f2), 100.0);
        assert_eq!(mesh.flow_count(), 1);
    }

    #[test]
    fn weighted_routing_reroutes_live_flows() {
        // Triangle with a weak direct link 0–2: under min-hop the flow
        // goes direct and gets 2 Mbps; after switching to ETX-style
        // routing it detours via node 1 and gets its full demand.
        let mut topo = Topology::new();
        for i in 0..3 {
            topo.add_node(NodeId(i)).unwrap();
        }
        topo.add_link(NodeId(0), NodeId(1)).unwrap();
        topo.add_link(NodeId(1), NodeId(2)).unwrap();
        let weak = topo.add_link(NodeId(0), NodeId(2)).unwrap();
        let mut mesh = Mesh::with_uniform_capacity(topo, mbps(100.0)).unwrap();
        mesh.set_link_source(NodeId(0), NodeId(2), CapacitySource::Constant(mbps(2.0)))
            .unwrap();
        let f = mesh.add_flow(NodeId(0), NodeId(2), mbps(10.0)).unwrap();
        mesh.advance(SimDuration::from_millis(100));
        approx(mesh.flow_rate(f), 2.0);

        // ETX ∝ 1/capacity-ish: make the weak link expensive.
        mesh.use_weighted_routing(|lid| if lid == weak { 10.0 } else { 1.0 });
        mesh.advance(SimDuration::from_millis(100));
        // Rate may exceed demand while the starvation backlog drains;
        // goodput is back at the full demand.
        approx(mesh.flow_goodput(f), 10.0);
        assert_eq!(
            mesh.path(NodeId(0), NodeId(2)).unwrap(),
            &[NodeId(0), NodeId(1), NodeId(2)]
        );
        // Usage accounting follows the new path.
        assert!(mesh.link_usage(NodeId(0), NodeId(1)).unwrap() >= mbps(10.0));
        approx(mesh.link_usage(NodeId(0), NodeId(2)).unwrap(), 0.0);
    }

    #[test]
    fn reset_flow_queue_clears_backlog() {
        let mut mesh = three_node_lan();
        let f = mesh.add_flow(NodeId(0), NodeId(1), mbps(200.0)).unwrap();
        mesh.advance(SimDuration::from_secs(5));
        assert!(mesh.flow_backlog(f).unwrap().as_bytes() > 0);
        mesh.reset_flow_queue(f).unwrap();
        assert_eq!(mesh.flow_backlog(f).unwrap(), DataSize::ZERO);
    }

    #[test]
    fn down_link_reroutes_and_recovers() {
        // Triangle: flow 0→2 goes direct; link down forces the detour
        // via 1; link up restores the direct path.
        let mut mesh = three_node_lan();
        let f = mesh.add_flow(NodeId(0), NodeId(2), mbps(10.0)).unwrap();
        mesh.advance(SimDuration::from_millis(100));
        assert_eq!(mesh.path(NodeId(0), NodeId(2)).unwrap().len(), 2);
        mesh.set_link_up(NodeId(0), NodeId(2), false).unwrap();
        assert!(!mesh.link_is_up(NodeId(0), NodeId(2)));
        assert_eq!(mesh.link_effective_capacity(NodeId(0), NodeId(2)).unwrap(), Bandwidth::ZERO);
        mesh.advance(SimDuration::from_millis(100));
        assert_eq!(
            mesh.path(NodeId(0), NodeId(2)).unwrap(),
            &[NodeId(0), NodeId(1), NodeId(2)]
        );
        approx(mesh.flow_goodput(f), 10.0);
        mesh.set_link_up(NodeId(0), NodeId(2), true).unwrap();
        mesh.advance(SimDuration::from_millis(100));
        assert_eq!(mesh.path(NodeId(0), NodeId(2)).unwrap().len(), 2);
    }

    #[test]
    fn node_crash_parks_flows_until_recovery() {
        let mut mesh = three_node_lan();
        let f = mesh.add_flow(NodeId(0), NodeId(1), mbps(10.0)).unwrap();
        mesh.set_node_up(NodeId(1), false).unwrap();
        assert!(!mesh.node_is_up(NodeId(1)));
        assert!(!mesh.link_is_up(NodeId(0), NodeId(1)));
        mesh.advance(SimDuration::from_millis(100));
        assert_eq!(mesh.flow_rate(f), Bandwidth::ZERO);
        assert_eq!(mesh.flow_loss(f), 1.0);
        assert!(matches!(
            mesh.path(NodeId(0), NodeId(1)),
            Err(MeshError::Unreachable(_, _))
        ));
        assert_eq!(
            mesh.flow_message_delay(f, DataSize::from_kilobytes(1)).unwrap(),
            crate::queueing::MAX_DELAY
        );
        // Flows added while the destination is down park as unroutable.
        let g = mesh.add_flow(NodeId(2), NodeId(1), mbps(5.0)).unwrap();
        mesh.advance(SimDuration::from_millis(100));
        assert_eq!(mesh.flow_rate(g), Bandwidth::ZERO);
        // Recovery restores both.
        mesh.set_node_up(NodeId(1), true).unwrap();
        mesh.advance(SimDuration::from_millis(100));
        approx(mesh.flow_goodput(f), 10.0);
        approx(mesh.flow_goodput(g), 5.0);
    }

    #[test]
    fn crashed_node_contributes_no_capacity() {
        let mut mesh = three_node_lan();
        mesh.set_node_up(NodeId(2), false).unwrap();
        approx(mesh.node_total_link_capacity(NodeId(2)).unwrap(), 0.0);
        // Node 0 keeps only its link to node 1.
        approx(mesh.node_total_link_capacity(NodeId(0)).unwrap(), 100.0);
        approx(mesh.link_capacity(NodeId(0), NodeId(2)).unwrap(), 0.0);
    }

    #[test]
    fn stale_trace_freezes_capacity_reads() {
        let mut topo = Topology::new();
        topo.add_node(NodeId(0)).unwrap();
        topo.add_node(NodeId(1)).unwrap();
        topo.add_link(NodeId(0), NodeId(1)).unwrap();
        let trace: BandwidthTrace = StepScript::new("l", mbps(50.0))
            .restrict(SimTime::from_secs(10), SimDuration::from_secs(20), mbps(5.0))
            .compile(SimDuration::from_secs(60));
        let mut mesh = Mesh::new(topo).unwrap();
        mesh.set_link_source(NodeId(0), NodeId(1), CapacitySource::Trace(trace)).unwrap();
        mesh.advance(SimDuration::from_secs(5)); // now=5s, cap 50
        mesh.freeze_link_trace(NodeId(0), NodeId(1)).unwrap();
        mesh.advance(SimDuration::from_secs(10)); // now=15s, real cap 5
        approx(mesh.link_effective_capacity(NodeId(0), NodeId(1)).unwrap(), 50.0);
        mesh.unfreeze_link_trace(NodeId(0), NodeId(1)).unwrap();
        approx(mesh.link_effective_capacity(NodeId(0), NodeId(1)).unwrap(), 5.0);
    }

    #[test]
    fn weighted_routing_survives_partition_without_panicking() {
        // Line 0-1-2 under weighted routing; downing 1 severs 0↔2
        // entirely — the old implementation would have panicked here.
        let mut topo = Topology::new();
        for i in 0..3 {
            topo.add_node(NodeId(i)).unwrap();
        }
        topo.add_link(NodeId(0), NodeId(1)).unwrap();
        topo.add_link(NodeId(1), NodeId(2)).unwrap();
        let mut mesh = Mesh::with_uniform_capacity(topo, mbps(100.0)).unwrap();
        let f = mesh.add_flow(NodeId(0), NodeId(2), mbps(10.0)).unwrap();
        mesh.use_weighted_routing(|_| 1.0);
        mesh.set_node_up(NodeId(1), false).unwrap();
        mesh.advance(SimDuration::from_millis(100));
        assert_eq!(mesh.flow_rate(f), Bandwidth::ZERO);
        mesh.set_node_up(NodeId(1), true).unwrap();
        mesh.advance(SimDuration::from_millis(100));
        approx(mesh.flow_goodput(f), 10.0);
        // Weighted routing is still active after recovery.
        assert_eq!(mesh.path(NodeId(0), NodeId(2)).unwrap().len(), 3);
    }

    #[test]
    fn fault_state_error_paths() {
        let mut mesh = three_node_lan();
        assert!(matches!(
            mesh.set_node_up(NodeId(9), false),
            Err(MeshError::UnknownNode(_))
        ));
        assert!(matches!(
            mesh.set_link_up(NodeId(0), NodeId(9), false),
            Err(MeshError::UnknownLink(_, _))
        ));
        assert!(matches!(
            mesh.freeze_link_trace(NodeId(0), NodeId(9)),
            Err(MeshError::UnknownLink(_, _))
        ));
        assert!(!mesh.node_is_up(NodeId(9)));
        assert!(!mesh.link_is_up(NodeId(0), NodeId(9)));
    }

    #[test]
    fn observed_advance_reports_rate_and_capacity_changes() {
        let mut mesh = three_node_lan();
        let mut journal = bass_obs::Journal::new();
        // Quiet mesh: baseline pass emits nothing.
        mesh.advance_observed(SimDuration::from_millis(100), Some(&mut journal));
        assert!(journal.is_empty());
        // A new flow changes the allocation picture exactly once.
        mesh.add_flow(NodeId(0), NodeId(1), mbps(40.0)).unwrap();
        mesh.advance_observed(SimDuration::from_millis(100), Some(&mut journal));
        mesh.advance_observed(SimDuration::from_millis(100), Some(&mut journal));
        assert_eq!(journal.count("flow_rate_recomputed"), 1);
        match journal.events().next().unwrap() {
            bass_obs::Event::FlowRateRecomputed { flows, allocated_mbps, .. } => {
                assert_eq!(*flows, 1);
                assert!((allocated_mbps - 40.0).abs() < 1e-6);
            }
            other => panic!("expected FlowRateRecomputed, got {other:?}"),
        }
        // A capacity cut is reported with old/new values and the cause.
        mesh.set_link_cap(NodeId(0), NodeId(1), Some(mbps(10.0))).unwrap();
        mesh.emit_capacity_changes(&mut journal, "scenario");
        assert_eq!(journal.count("link_capacity_changed"), 1);
        match journal.events().last().unwrap() {
            bass_obs::Event::LinkCapacityChanged { old_mbps, new_mbps, cause, .. } => {
                assert!((old_mbps - 100.0).abs() < 1e-6);
                assert!((new_mbps - 10.0).abs() < 1e-6);
                assert_eq!(cause, "scenario");
            }
            other => panic!("expected LinkCapacityChanged, got {other:?}"),
        }
        // The None sink stays a pure advance.
        mesh.advance_observed(SimDuration::from_millis(100), None);
    }

    /// A 4×4 grid mesh with flows spread over several links, some of
    /// them loopback (unconstrained), driven identically under each
    /// engine by `script`.
    fn run_engine(engine: AllocEngine, jobs: usize) -> Vec<(u64, f64)> {
        let mut mesh =
            Mesh::with_uniform_capacity(Topology::grid(4, 4), mbps(60.0)).unwrap();
        mesh.set_alloc_engine(engine);
        mesh.set_alloc_jobs(jobs);
        for i in 0..12u64 {
            let src = NodeId((i % 16) as u32);
            let dst = NodeId(((i * 5 + 3) % 16) as u32);
            mesh.add_flow(src, dst, mbps(8.0 + i as f64)).unwrap();
        }
        for tick in 0..30u64 {
            // Sparse perturbations: one link cap change every few ticks,
            // one demand change on others, long quiescent stretches.
            if tick % 5 == 0 {
                let cap = if tick % 10 == 0 { Some(mbps(25.0)) } else { None };
                mesh.set_link_cap(NodeId(0), NodeId(1), cap).unwrap();
            }
            if tick % 7 == 3 {
                mesh.set_flow_demand(FlowId(tick % 12), mbps(3.0 + tick as f64)).unwrap();
            }
            if tick == 11 {
                mesh.set_node_egress_cap(NodeId(5), Some(mbps(20.0))).unwrap();
            }
            if tick == 17 {
                mesh.remove_flow(FlowId(2)).unwrap();
            }
            mesh.advance(SimDuration::from_millis(100));
        }
        (0..12u64)
            .map(|i| (i, mesh.flow_rate(FlowId(i)).as_bps()))
            .collect()
    }

    #[test]
    fn delta_engine_is_bit_identical_to_dense_and_incremental() {
        let dense = run_engine(AllocEngine::Dense, 1);
        let incr = run_engine(AllocEngine::Incremental, 1);
        let delta = run_engine(AllocEngine::Delta, 1);
        assert_eq!(dense, incr);
        assert_eq!(dense, delta);
    }

    #[test]
    fn sharded_delta_is_byte_identical_to_serial() {
        let serial = run_engine(AllocEngine::Delta, 1);
        let sharded = run_engine(AllocEngine::Delta, 4);
        assert_eq!(serial, sharded);
    }

    #[test]
    fn delta_quiescent_tick_keeps_rates_verbatim() {
        let mut mesh = three_node_lan();
        mesh.set_alloc_engine(AllocEngine::Delta);
        let f = mesh.add_flow(NodeId(0), NodeId(1), mbps(30.0)).unwrap();
        mesh.advance(SimDuration::from_millis(100));
        let before = mesh.flow_rate(f).as_bps();
        // Constant capacities, satisfied demand: nothing is dirty, the
        // rate must be the very same bits.
        mesh.advance(SimDuration::from_millis(100));
        assert_eq!(before.to_bits(), mesh.flow_rate(f).as_bps().to_bits());
    }

    #[test]
    fn alloc_jobs_clamps_to_one() {
        let mut mesh = three_node_lan();
        mesh.set_alloc_jobs(0);
        assert_eq!(mesh.alloc_jobs(), 1);
        mesh.set_alloc_jobs(8);
        assert_eq!(mesh.alloc_jobs(), 8);
    }

    #[test]
    fn cloned_mesh_respawns_its_own_shard_pool() {
        // Clone a sharded mesh mid-run: the clone starts with an empty
        // pool, respawns workers on its next fill, and both continue to
        // the identical allocation.
        let mut mesh =
            Mesh::with_uniform_capacity(Topology::grid(4, 4), mbps(60.0)).unwrap();
        mesh.set_alloc_engine(AllocEngine::Delta);
        mesh.set_alloc_jobs(4);
        for i in 0..12u64 {
            let src = NodeId((i % 16) as u32);
            let dst = NodeId(((i * 5 + 3) % 16) as u32);
            mesh.add_flow(src, dst, mbps(8.0 + i as f64)).unwrap();
        }
        mesh.advance(SimDuration::from_millis(100));
        let mut twin = mesh.clone();
        for tick in 0..6u64 {
            for m in [&mut mesh, &mut twin] {
                m.set_link_cap(NodeId(0), NodeId(1), Some(mbps(20.0 + tick as f64)))
                    .unwrap();
                m.advance(SimDuration::from_millis(100));
            }
        }
        for i in 0..12u64 {
            assert_eq!(
                mesh.flow_rate(FlowId(i)).as_bps().to_bits(),
                twin.flow_rate(FlowId(i)).as_bps().to_bits(),
                "flow {i}"
            );
        }
    }

    #[test]
    fn queues_quiescent_tracks_backlog_fixed_points() {
        let step = SimDuration::from_millis(100);
        let mut mesh = three_node_lan();
        let f = mesh.add_flow(NodeId(0), NodeId(1), mbps(30.0)).unwrap();
        // Before the first allocation nothing is provable.
        assert!(!mesh.queues_quiescent(step));
        mesh.advance(step);
        // Satisfied demand, empty queue: a tick is the identity.
        assert!(mesh.queues_quiescent(step));
        // Over-subscribe: the backlog grows every tick.
        mesh.set_link_cap(NodeId(0), NodeId(1), Some(mbps(10.0))).unwrap();
        mesh.advance(step);
        assert!(!mesh.queues_quiescent(step));
        // Drop the offered load to zero and drain. The drain targets a
        // one-second horizon, so the backlog decays geometrically and
        // only reaches the 0.0 fixed point once it underflows — finite,
        // but many ticks out.
        mesh.set_flow_demand(f, Bandwidth::ZERO).unwrap();
        let mut drained = 0u32;
        while !mesh.queues_quiescent(step) {
            mesh.advance(step);
            drained += 1;
            assert!(drained < 50_000, "backlog never reached a fixed point");
        }
    }

    #[test]
    fn next_trace_change_skips_frozen_links() {
        let mut topo = Topology::new();
        topo.add_node(NodeId(0)).unwrap();
        topo.add_node(NodeId(1)).unwrap();
        topo.add_link(NodeId(0), NodeId(1)).unwrap();
        let trace: BandwidthTrace = StepScript::new("l", mbps(50.0))
            .restrict(SimTime::from_secs(10), SimDuration::from_secs(10), mbps(5.0))
            .compile(SimDuration::from_secs(60));
        let mut mesh = Mesh::new(topo).unwrap();
        mesh.set_link_source(NodeId(0), NodeId(1), CapacitySource::Trace(trace))
            .unwrap();
        let first = mesh.next_trace_change_after(SimTime::ZERO).unwrap();
        assert!(first > SimTime::ZERO && first <= SimTime::from_secs(10));
        // A frozen link's trace can no longer change any capacity read.
        mesh.freeze_link_trace(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(mesh.next_trace_change_after(SimTime::ZERO), None);
        mesh.unfreeze_link_trace(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(mesh.next_trace_change_after(SimTime::ZERO), Some(first));
        // Constant-capacity meshes never schedule a trace change.
        assert_eq!(three_node_lan().next_trace_change_after(SimTime::ZERO), None);
    }

    #[test]
    fn advance_quiescent_matches_a_full_tick_bit_for_bit() {
        let step = SimDuration::from_millis(100);
        let mut ticked = three_node_lan();
        ticked.set_alloc_engine(AllocEngine::Delta);
        let f = ticked.add_flow(NodeId(0), NodeId(1), mbps(30.0)).unwrap();
        ticked.advance(step);
        let mut skipped = ticked.clone();
        assert!(ticked.queues_quiescent(step));
        for _ in 0..10 {
            ticked.advance(step);
            skipped.advance_quiescent(step);
        }
        assert_eq!(ticked.now(), skipped.now());
        assert_eq!(
            ticked.flow_rate(f).as_bps().to_bits(),
            skipped.flow_rate(f).as_bps().to_bits()
        );
        assert_eq!(
            ticked.flow_goodput(f).as_bps().to_bits(),
            skipped.flow_goodput(f).as_bps().to_bits()
        );
        // And a subsequent full tick continues identically from both.
        ticked.advance(step);
        skipped.advance(step);
        assert_eq!(
            ticked.flow_rate(f).as_bps().to_bits(),
            skipped.flow_rate(f).as_bps().to_bits()
        );
    }

    #[test]
    fn usage_audit_detects_and_repairs_injected_drift() {
        let mut mesh = three_node_lan();
        mesh.set_alloc_engine(AllocEngine::Delta);
        mesh.add_flow(NodeId(0), NodeId(1), mbps(30.0)).unwrap();
        mesh.add_flow(NodeId(1), NodeId(2), mbps(20.0)).unwrap();
        let step = SimDuration::from_millis(100);
        mesh.advance(step);
        let link_count = mesh.topo.link_count();
        // The maintained views are clean after a normal tick.
        assert!(!mesh.audit_usage_views(link_count));
        assert_eq!(mesh.usage_view_rebuilds(), 0);
        // Inject drift into both views; the audit must detect it,
        // install the recomputed truth, bump the rebuild counter, and
        // force the next queue pass to run in full.
        mesh.link_used_bps[0] += 123.0;
        mesh.egress_used_bps[1] -= 7.0;
        assert!(mesh.audit_usage_views(link_count));
        assert_eq!(mesh.usage_view_rebuilds(), 1);
        assert!(mesh.pending_full);
        // Repaired: a second audit is clean and the counter holds.
        assert!(!mesh.audit_usage_views(link_count));
        assert_eq!(mesh.usage_view_rebuilds(), 1);
    }

    #[test]
    fn periodic_usage_audit_repairs_drift_on_schedule() {
        let mut mesh = three_node_lan();
        mesh.set_alloc_engine(AllocEngine::Delta);
        let f = mesh.add_flow(NodeId(0), NodeId(1), mbps(30.0)).unwrap();
        mesh.set_usage_check_every(1);
        let step = SimDuration::from_millis(100);
        mesh.advance(step);
        mesh.advance(step);
        assert_eq!(mesh.usage_view_rebuilds(), 0, "clean runs never rebuild");
        // Corrupt the maintained link view: the next audited tick must
        // repair it and keep allocations unaffected.
        mesh.link_used_bps[0] += 1e6;
        for _ in 0..3 {
            mesh.advance(step);
        }
        assert_eq!(mesh.usage_view_rebuilds(), 1);
        assert_eq!(mesh.flow_rate(f).as_bps().to_bits(), mbps(30.0).as_bps().to_bits());
        // Disabled audits leave corruption alone (and never rebuild).
        mesh.set_usage_check_every(0);
        mesh.link_used_bps[0] += 1e6;
        for _ in 0..3 {
            mesh.advance(step);
        }
        assert_eq!(mesh.usage_view_rebuilds(), 1);
    }
}
