//! Per-flow queueing: delay inflation under load and backlog under
//! overload.
//!
//! The fluid model needs a delay figure for "transfer a message of size S
//! on this flow". Three regimes:
//!
//! 1. **Uncongested** (`offered < allocated`): transfer takes
//!    `S/allocated`, inflated by the M/M/1 factor `1/(1 - rho)` with
//!    `rho = offered/allocated` to capture statistical queueing.
//! 2. **Saturated** (`offered >= allocated`): the excess accumulates in
//!    an explicit backlog; a new message waits for the backlog to drain
//!    before its own serialization. This is what makes latency explode by
//!    orders of magnitude during the paper's 25 Mbps squeeze (Fig. 5) and
//!    recover after migration.
//! 3. **Dead** (`allocated == 0`): delay is effectively infinite.
//!
//! Loss (for the video-conferencing loss plots, Fig. 4) is the excess
//! demand fraction `max(0, 1 - allocated/offered)`.

use bass_util::time::{SimDuration, SimTime};
use bass_util::units::{Bandwidth, DataSize};
use serde::{Deserialize, Serialize};

/// Cap on the utilization used in the M/M/1 inflation factor so the
/// uncongested regime never produces unbounded delays by itself; past
/// this point the explicit backlog takes over.
const RHO_CAP: f64 = 0.95;

/// Maximum backlog drain time we report, to keep a dead flow's delay
/// finite and comparable (10 minutes dwarfs every experiment's timeout).
pub const MAX_DELAY: SimDuration = SimDuration::from_secs(600);

/// Queue state for one flow (one direction).
///
/// # Examples
///
/// ```
/// use bass_mesh::queueing::FlowQueue;
/// use bass_util::prelude::*;
///
/// let mut q = FlowQueue::new();
/// // Offered 10 Mbps onto an allocation of 5 Mbps for 2 seconds:
/// q.advance(SimDuration::from_secs(2), Bandwidth::from_mbps(10.0), Bandwidth::from_mbps(5.0));
/// assert!(q.backlog().as_bytes() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FlowQueue {
    /// Accumulated un-sent bits.
    backlog_bits: f64,
    /// Bottleneck-link utilization observed at the last advance.
    rho: f64,
}

impl FlowQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        FlowQueue::default()
    }

    /// Advances the queue by `dt` with the given offered and allocated
    /// rates: backlog grows by `offered - allocated` (and drains when
    /// negative).
    pub fn advance(&mut self, dt: SimDuration, offered: Bandwidth, allocated: Bandwidth) {
        let secs = dt.as_secs_f64();
        self.backlog_bits += (offered.as_bps() - allocated.as_bps()) * secs;
        self.backlog_bits = self.backlog_bits.max(0.0);
    }

    /// True when one more [`advance`](Self::advance) with these exact
    /// rates would leave the backlog **bitwise** unchanged — the queue
    /// sits at a fixed point of the integration (drained and staying
    /// drained, or filling and draining at exactly equal rates).
    ///
    /// This is the per-flow half of the event-driven mode's quiescence
    /// test: when every queue is at a fixed point and no input changes,
    /// a whole window of ticks can be skipped without any float drifting
    /// by a single bit. Mirrors `advance`'s arithmetic exactly; growing
    /// backlogs always return `false`, so congested flows are never
    /// skipped over.
    pub fn advance_is_identity(
        &self,
        dt: SimDuration,
        offered: Bandwidth,
        allocated: Bandwidth,
    ) -> bool {
        let secs = dt.as_secs_f64();
        let next = (self.backlog_bits + (offered.as_bps() - allocated.as_bps()) * secs).max(0.0);
        next.to_bits() == self.backlog_bits.to_bits()
    }

    /// Updates the utilization of the flow's bottleneck link (total
    /// traffic over capacity, from the allocator's per-link accounting).
    /// Clamped to `[0, 1]`.
    pub fn set_path_utilization(&mut self, rho: f64) {
        self.rho = rho.clamp(0.0, 1.0);
    }

    /// Current backlog.
    pub fn backlog(&self) -> DataSize {
        DataSize::from_bytes((self.backlog_bits / 8.0) as u64)
    }

    /// Raw queued bits — the exact float the integrator maintains.
    /// Unlike [`backlog`](Self::backlog) there is no byte quantization,
    /// so `backlog_bits() > 0.0` is the precise "this queue still has
    /// data" predicate the active-flow bookkeeping needs.
    pub fn backlog_bits(&self) -> f64 {
        self.backlog_bits
    }

    /// Bottleneck-link utilization set at the last advance, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.rho
    }

    /// Clears the backlog (e.g. when the component restarts and its
    /// connections are torn down).
    pub fn reset(&mut self) {
        self.backlog_bits = 0.0;
        self.rho = 0.0;
    }

    /// Delay to deliver a message of `size`:
    ///
    /// - queued backlog drains first at the flow's `allocated` rate;
    /// - the message itself serializes **at line rate** (`capacity`, the
    ///   path's bottleneck capacity — packets burst at link speed, not
    ///   at the flow's average rate), inflated by the M/M/1 factor
    ///   `1/(1 − rho)` for the bottleneck utilization.
    ///
    /// Capped at a large constant (10 minutes — far beyond any
    /// experiment's timeout); a dead path (`capacity == 0`) returns the
    /// cap.
    pub fn transfer_delay(
        &self,
        size: DataSize,
        capacity: Bandwidth,
        allocated: Bandwidth,
    ) -> SimDuration {
        if capacity.is_zero() {
            return MAX_DELAY;
        }
        let drain_secs = if self.backlog_bits <= 0.0 {
            0.0
        } else if allocated.is_zero() {
            return MAX_DELAY;
        } else {
            self.backlog_bits / allocated.as_bps()
        };
        let rho = self.rho.min(RHO_CAP);
        let serialize_secs = size.as_bits() as f64 / capacity.as_bps() / (1.0 - rho);
        let total = SimDuration::from_secs_f64(drain_secs + serialize_secs);
        total.min(MAX_DELAY)
    }

    /// Loss fraction for real-time (non-queued) traffic at the given
    /// rates: the share of offered data that does not fit.
    pub fn loss_fraction(offered: Bandwidth, allocated: Bandwidth) -> f64 {
        if offered.is_zero() {
            return 0.0;
        }
        (1.0 - allocated.as_bps() / offered.as_bps()).clamp(0.0, 1.0)
    }
}

/// Constant one-hop propagation/forwarding latency of a wireless hop.
///
/// 802.11 per-hop forwarding latency is on the order of a millisecond;
/// co-located (loopback) communication is ~50 µs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HopLatency {
    /// Per-wireless-hop forwarding latency.
    pub per_hop: SimDuration,
    /// Loopback latency for co-located components.
    pub loopback: SimDuration,
}

impl Default for HopLatency {
    fn default() -> Self {
        HopLatency {
            per_hop: SimDuration::from_millis(1),
            loopback: SimDuration::from_micros(50),
        }
    }
}

impl HopLatency {
    /// Propagation latency for a path of `hops` wireless hops (0 hops =
    /// loopback).
    pub fn for_hops(&self, hops: usize) -> SimDuration {
        if hops == 0 {
            self.loopback
        } else {
            self.per_hop * hops as u64
        }
    }
}

/// A helper tracking when an in-flight transfer completes; used by
/// emulation layers that need explicit completion times rather than
/// instantaneous delays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transfer {
    /// Time the transfer was initiated.
    pub started: SimTime,
    /// Remaining bytes to move.
    pub remaining: DataSize,
}

impl Transfer {
    /// Creates a transfer of `size` starting at `now`.
    pub fn new(now: SimTime, size: DataSize) -> Self {
        Transfer { started: now, remaining: size }
    }

    /// Advances the transfer at `rate` for `dt`; returns `true` when the
    /// transfer completed during this step.
    pub fn advance(&mut self, dt: SimDuration, rate: Bandwidth) -> bool {
        let moved_bits = rate.as_bps() * dt.as_secs_f64();
        let moved = DataSize::from_bytes((moved_bits / 8.0) as u64);
        if moved.as_bytes() >= self.remaining.as_bytes() {
            self.remaining = DataSize::ZERO;
            true
        } else {
            self.remaining = DataSize::from_bytes(self.remaining.as_bytes() - moved.as_bytes());
            false
        }
    }

    /// True when nothing remains.
    pub fn is_complete(&self) -> bool {
        self.remaining == DataSize::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(x: f64) -> Bandwidth {
        Bandwidth::from_mbps(x)
    }

    #[test]
    fn uncongested_delay_is_near_serialization() {
        let mut q = FlowQueue::new();
        q.advance(SimDuration::from_secs(1), mbps(1.0), mbps(1.0));
        q.set_path_utilization(0.1);
        // 1 Mbit message bursting at 10 Mbps line rate, rho = 0.1.
        let d = q.transfer_delay(DataSize::from_bytes(125_000), mbps(10.0), mbps(1.0));
        let expect = 1.0 / 10.0 / (1.0 - 0.1);
        assert!((d.as_secs_f64() - expect).abs() < 1e-3, "{d}");
    }

    #[test]
    fn overload_grows_backlog_and_delay() {
        let mut q = FlowQueue::new();
        q.advance(SimDuration::from_secs(10), mbps(10.0), mbps(5.0));
        q.set_path_utilization(1.0);
        // 50 Mbit backlog at 5 Mbps → 10 s drain.
        let d = q.transfer_delay(DataSize::from_bytes(1), mbps(5.0), mbps(5.0));
        assert!(d.as_secs_f64() > 9.9, "{d}");
        assert_eq!(q.utilization(), 1.0);
        // Draining: allocation above offer shrinks the backlog.
        q.advance(SimDuration::from_secs(10), Bandwidth::ZERO, mbps(5.0));
        assert_eq!(q.backlog(), DataSize::ZERO);
    }

    #[test]
    fn advance_identity_matches_a_real_advance_bit_for_bit() {
        let dt = SimDuration::from_millis(100);
        let cases = [
            (mbps(0.0), mbps(0.0)),   // idle flow
            (mbps(5.0), mbps(5.0)),   // balanced
            (mbps(5.0), mbps(10.0)),  // over-allocated, backlog pinned at 0
            (mbps(10.0), mbps(5.0)),  // congested, backlog grows
            (mbps(0.1), mbps(0.3)),   // non-representable rates
        ];
        for (offered, allocated) in cases {
            let mut q = FlowQueue::new();
            // Build up some state first so non-zero backlogs are covered.
            q.advance(SimDuration::from_secs(3), mbps(10.0), mbps(5.0));
            q.advance(SimDuration::from_secs(30), mbps(0.0), allocated);
            let predicted = q.advance_is_identity(dt, offered, allocated);
            let before = q;
            q.advance(dt, offered, allocated);
            assert_eq!(
                predicted,
                q == before,
                "offered {offered} allocated {allocated}: predicted {predicted}"
            );
        }
    }

    #[test]
    fn backlog_never_negative() {
        let mut q = FlowQueue::new();
        q.advance(SimDuration::from_secs(100), Bandwidth::ZERO, mbps(100.0));
        assert_eq!(q.backlog(), DataSize::ZERO);
    }

    #[test]
    fn utilization_is_clamped() {
        let mut q = FlowQueue::new();
        q.set_path_utilization(3.0);
        assert_eq!(q.utilization(), 1.0);
        q.set_path_utilization(-1.0);
        assert_eq!(q.utilization(), 0.0);
    }

    #[test]
    fn dead_path_delay_is_capped() {
        let q = FlowQueue::new();
        let d = q.transfer_delay(DataSize::from_megabytes(1), Bandwidth::ZERO, Bandwidth::ZERO);
        assert_eq!(d, MAX_DELAY);
    }

    #[test]
    fn backlog_with_zero_allocation_is_capped() {
        let mut q = FlowQueue::new();
        q.advance(SimDuration::from_secs(1), mbps(10.0), Bandwidth::ZERO);
        let d = q.transfer_delay(DataSize::from_bytes(1), mbps(10.0), Bandwidth::ZERO);
        assert_eq!(d, MAX_DELAY);
    }

    #[test]
    fn delay_capped_under_huge_backlog() {
        let mut q = FlowQueue::new();
        q.advance(SimDuration::from_secs(10_000), mbps(100.0), mbps(0.001));
        let d = q.transfer_delay(DataSize::from_bytes(1), mbps(0.001), mbps(0.001));
        assert_eq!(d, MAX_DELAY);
    }

    #[test]
    fn reset_clears_state() {
        let mut q = FlowQueue::new();
        q.advance(SimDuration::from_secs(10), mbps(10.0), mbps(1.0));
        q.reset();
        assert_eq!(q.backlog(), DataSize::ZERO);
        assert_eq!(q.utilization(), 0.0);
    }

    #[test]
    fn loss_fraction_regimes() {
        assert_eq!(FlowQueue::loss_fraction(Bandwidth::ZERO, mbps(1.0)), 0.0);
        assert_eq!(FlowQueue::loss_fraction(mbps(1.0), mbps(1.0)), 0.0);
        assert_eq!(FlowQueue::loss_fraction(mbps(2.0), mbps(1.0)), 0.5);
        assert_eq!(FlowQueue::loss_fraction(mbps(1.0), Bandwidth::ZERO), 1.0);
    }

    #[test]
    fn hop_latency() {
        let h = HopLatency::default();
        assert_eq!(h.for_hops(0), SimDuration::from_micros(50));
        assert_eq!(h.for_hops(3), SimDuration::from_millis(3));
    }

    #[test]
    fn transfer_progression() {
        let mut t = Transfer::new(SimTime::ZERO, DataSize::from_megabytes(1));
        // 8 Mbit at 4 Mbps: needs 2 s.
        assert!(!t.advance(SimDuration::from_secs(1), mbps(4.0)));
        assert!(!t.is_complete());
        assert!(t.advance(SimDuration::from_secs(1), mbps(4.0)));
        assert!(t.is_complete());
        // Further advances stay complete.
        assert!(t.advance(SimDuration::from_secs(1), mbps(4.0)));
    }
}
