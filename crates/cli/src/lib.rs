//! `bassctl` — plan and simulate BASS deployments from JSON inputs.
//!
//! Two input files describe a deployment:
//!
//! - an **application manifest** ([`bass_appdag::Manifest`]): components
//!   with CPU/memory requests and inter-component bandwidth requirements
//!   (the paper's deployment file with bandwidth metadata, §5);
//! - a **testbed description** ([`testbed::TestbedSpec`]): nodes with
//!   capacities, wireless links with mean bandwidth/variability, and
//!   optional scripted restrictions.
//!
//! The library half implements the commands; `src/bin/bassctl.rs` is the
//! thin argument-parsing shell around them.

pub mod commands;
pub mod testbed;

pub use commands::{
    arena, campaign, metrics_report, order, place, simulate, ArenaCommandOptions,
    CampaignCommandOptions, PlaceOutcome, SimulateOptions, SimulateOutcome,
};
pub use testbed::{LinkSpec, NodeSpecJson, RestrictionSpec, TestbedSpec};
