//! The emulation environment: one application deployment, end to end.

use crate::scenario::Scenario;
use bass_appdag::{AppDag, ComponentId};
use bass_cluster::{Cluster, MigrationRecord, Placement, RestartModel};
use bass_core::heuristics::ComponentOrdering;
use bass_core::placement::pack_ordering;
use bass_core::scheduler::{BassScheduler, ScheduleError, PlacementPolicy};
use bass_core::{
    BassController, ControllerConfig, EventQueue, EventSource, MigrationPlan, PolicyKind,
    SimEvent, StepMode,
};
use bass_faults::{Fault, FaultPlan};
use bass_mesh::{AllocEngine, FlowId, Mesh, MeshError, NodeId};
use bass_netmon::{GoodputMonitor, NetMonitor, NetMonitorConfig, OnlineProfiler};
use bass_util::time::{SimDuration, SimTime};
use bass_util::units::{Bandwidth, DataSize};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// Environment configuration.
#[derive(Debug, Clone)]
pub struct SimEnvConfig {
    /// Fixed simulation step (default 100 ms).
    pub step: SimDuration,
    /// Placement policy.
    pub policy: PlacementPolicy,
    /// Migration-decision policy the controller runs (the arena's
    /// registry; the default [`PolicyKind::Bass`] is the paper's
    /// behaviour and is byte-identical to the pre-trait controller).
    pub migration_policy: PolicyKind,
    /// Controller configuration (thresholds, cooldown).
    pub controller: ControllerConfig,
    /// Net-monitor configuration (probe cadence, headroom).
    pub netmon: NetMonitorConfig,
    /// Restart cost model for migrations.
    pub restart: RestartModel,
    /// Master switch for dynamic migration (off = static placement, the
    /// paper's "no migration" baselines).
    pub migrations_enabled: bool,
    /// Components that must never migrate (e.g. the pseudo-components
    /// that pin video-conference clients to their nodes).
    pub pinned: BTreeSet<ComponentId>,
    /// Stateful migration (paper §8, future work): when set, a migrating
    /// component carries this much state, and the restart downtime is
    /// extended by the time to transfer it over the path from the old to
    /// the new node at the bandwidth available at migration time
    /// (clamped to at most 120 s). `None` models the paper's stateless
    /// assumption.
    pub stateful_state: Option<DataSize>,
    /// Adaptive mesh routing: when set, every interval the mesh
    /// recomputes ETX-style routes from the *current* link capacities
    /// (weight ∝ 1/capacity) and re-routes all flows. Models community
    /// routing protocols (Babel/BATMAN/OLSR-ETX) adapting underneath the
    /// orchestrator — the paper assumes BASS works with "any routing
    /// mechanism". `None` keeps static min-hop routes.
    pub adaptive_routing: Option<SimDuration>,
    /// Deterministic fault schedule (crashes, flaps, probe loss, stale
    /// traces, controller restarts). The default empty plan injects
    /// nothing and leaves runs byte-identical to fault-free behaviour.
    /// See the `bass-faults` crate and `docs/FAULTS.md`.
    pub faults: FaultPlan,
    /// Which max-min allocation engine the mesh runs each tick. The
    /// default [`AllocEngine::Incremental`] is the fast path;
    /// [`AllocEngine::Delta`] additionally refills only the constraint
    /// components a tick actually perturbed; [`AllocEngine::Dense`]
    /// replays the pre-incremental reference implementation. All three
    /// produce bit-identical results (see `docs/ARCHITECTURE.md` and
    /// `docs/PERFORMANCE.md`).
    pub alloc_engine: AllocEngine,
    /// Worker threads for the delta engine's sharded component fill
    /// (≥1; other engines ignore it). Allocations are byte-identical at
    /// any job count, so this only changes wall-clock.
    pub alloc_jobs: usize,
    /// How [`SimEnv::run_for`] advances time. The default
    /// [`StepMode::Ticked`] executes every step;
    /// [`StepMode::EventDriven`] skips provably quiescent tick windows
    /// (see [`SimEnv::skippable_ticks`]) with byte-identical results and
    /// journals. Only changes wall-clock.
    pub step_mode: StepMode,
}

impl Default for SimEnvConfig {
    fn default() -> Self {
        SimEnvConfig {
            step: SimDuration::from_millis(100),
            policy: PlacementPolicy::default(),
            migration_policy: PolicyKind::default(),
            controller: ControllerConfig::default(),
            netmon: NetMonitorConfig::default(),
            restart: RestartModel::default(),
            migrations_enabled: true,
            pinned: BTreeSet::new(),
            stateful_state: None,
            adaptive_routing: None,
            faults: FaultPlan::new(),
            alloc_engine: AllocEngine::default(),
            alloc_jobs: 1,
            step_mode: StepMode::default(),
        }
    }
}

/// How one DAG edge is realized on the network right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeState {
    /// Both endpoints share a node: loopback, no mesh flow.
    Local,
    /// Endpoints on different nodes: carried by this mesh flow.
    Remote(FlowId),
}

/// Environment errors.
#[derive(Debug)]
pub enum EnvError {
    /// Scheduling failed during deploy.
    Schedule(ScheduleError),
    /// A mesh operation failed.
    Mesh(MeshError),
    /// A pinned component referenced an unknown id.
    UnknownComponent(ComponentId),
    /// The application was not deployed yet.
    NotDeployed,
    /// Growing the deployment DAG failed (id collision on admission).
    Dag(bass_appdag::DagError),
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::Schedule(e) => write!(f, "deploy failed: {e}"),
            EnvError::Mesh(e) => write!(f, "mesh operation failed: {e}"),
            EnvError::UnknownComponent(c) => write!(f, "unknown component {c}"),
            EnvError::NotDeployed => write!(f, "application is not deployed"),
            EnvError::Dag(e) => write!(f, "deployment dag rejected the app: {e}"),
        }
    }
}

impl Error for EnvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EnvError::Schedule(e) => Some(e),
            EnvError::Mesh(e) => Some(e),
            EnvError::Dag(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScheduleError> for EnvError {
    fn from(e: ScheduleError) -> Self {
        EnvError::Schedule(e)
    }
}

impl From<MeshError> for EnvError {
    fn from(e: MeshError) -> Self {
        EnvError::Mesh(e)
    }
}

/// Statistics accumulated over a run.
#[derive(Debug, Clone, Default)]
pub struct EnvStats {
    /// Applied migrations, in order.
    pub migrations: Vec<MigrationRecord>,
    /// Per-round (violating components, migrated components) counts —
    /// the two columns of Table 1.
    pub migration_rounds: Vec<(usize, usize)>,
    /// Migrations the controller wanted but could not place.
    pub unplaceable: u64,
    /// Adaptive-routing recomputations performed.
    pub route_updates: u64,
}

/// The emulation environment.
///
/// See the crate docs for the step pipeline. Construct with
/// [`SimEnv::new`], call [`SimEnv::deploy`], then drive with
/// [`SimEnv::step`] or [`SimEnv::run_for`].
#[derive(Debug)]
pub struct SimEnv {
    cfg: SimEnvConfig,
    mesh: Mesh,
    cluster: Cluster,
    dag: AppDag,
    controller: BassController,
    netmon: NetMonitor,
    goodput: GoodputMonitor,
    profiler: Option<OnlineProfiler>,
    scenario: Scenario,
    edges: BTreeMap<(ComponentId, ComponentId), EdgeState>,
    demand_factor: BTreeMap<(ComponentId, ComponentId), f64>,
    restarts: BTreeMap<ComponentId, (SimTime, RestartModel)>,
    last_route_update: SimTime,
    deployed: bool,
    stats: EnvStats,
    journal: Option<bass_obs::Journal>,
    /// Span profiler for wall-clock phase timing. Strictly write-only
    /// from the simulation's perspective: timings never feed back into
    /// any decision, so enabling it cannot change simulation results.
    spans: Option<bass_obs::SpanProfiler>,
    /// Components evicted by a node crash, awaiting re-placement.
    displaced: BTreeSet<ComponentId>,
    /// Bumped by every public mutator that can invalidate an in-flight
    /// quiescence proof. The event-driven `run_for` loop snapshots it
    /// before handing control to the per-tick hook and falls back to a
    /// full step when it moved (see [`SimEnv::skippable_ticks`]).
    mutation_epoch: u64,
    /// Probe-loss episodes started so far — each gets its own forked RNG
    /// stream off the fault plan's seed, so episode k draws identically
    /// across replays regardless of what happened in between.
    probe_loss_episodes: u64,
}

impl SimEnv {
    /// Creates an environment over a mesh, a cluster, and an application.
    pub fn new(mut mesh: Mesh, cluster: Cluster, dag: AppDag, cfg: SimEnvConfig) -> Self {
        let controller = BassController::with_policy(cfg.controller, cfg.migration_policy);
        let netmon = NetMonitor::new(cfg.netmon);
        mesh.set_alloc_engine(cfg.alloc_engine);
        mesh.set_alloc_jobs(cfg.alloc_jobs);
        SimEnv {
            cfg,
            mesh,
            cluster,
            dag,
            controller,
            netmon,
            goodput: GoodputMonitor::new(),
            profiler: None,
            scenario: Scenario::new(),
            edges: BTreeMap::new(),
            demand_factor: BTreeMap::new(),
            restarts: BTreeMap::new(),
            last_route_update: SimTime::ZERO,
            deployed: false,
            stats: EnvStats::default(),
            journal: None,
            spans: None,
            displaced: BTreeSet::new(),
            mutation_epoch: 0,
            probe_loss_episodes: 0,
        }
    }

    /// Installs the network scenario script.
    pub fn set_scenario(&mut self, scenario: Scenario) {
        self.mutation_epoch += 1;
        self.scenario = scenario;
    }

    /// Installs (or replaces) the fault-injection schedule. Equivalent to
    /// setting [`SimEnvConfig::faults`] before construction.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.mutation_epoch += 1;
        self.cfg.faults = plan;
    }

    /// The fault schedule, including its replay cursor.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.cfg.faults
    }

    /// Components currently evicted by a node crash and awaiting
    /// re-placement.
    pub fn displaced(&self) -> &BTreeSet<ComponentId> {
        &self.displaced
    }

    /// Attaches a structured-event journal: from now on, every probe,
    /// capacity change, trigger, target choice, placement, and tick is
    /// recorded into it (see the `bass-obs` crate and
    /// `docs/OBSERVABILITY.md`). Without a journal the environment pays
    /// no observability cost.
    pub fn attach_journal(&mut self, journal: bass_obs::Journal) {
        self.journal = Some(journal);
        // If attached after `deploy`, establish the capacity baseline
        // now so that later scenario cuts and trace drift are reported
        // as changes rather than silently becoming the baseline.
        if let Some(j) = self.journal.as_mut() {
            self.mesh.emit_capacity_changes(j, "scenario");
        }
    }

    /// Detaches and returns the journal, if one was attached.
    pub fn take_journal(&mut self) -> Option<bass_obs::Journal> {
        self.journal.take()
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&bass_obs::Journal> {
        self.journal.as_ref()
    }

    /// Mutable access to the attached journal (for workloads that emit
    /// their own counters or gauges alongside the built-in events).
    pub fn journal_mut(&mut self) -> Option<&mut bass_obs::Journal> {
        self.journal.as_mut()
    }

    /// Enables span profiling: from now on every [`step`](SimEnv::step)
    /// records wall-clock durations for its per-tick phases (`tick.*`),
    /// the mesh allocation interior (`mesh.*`), probe passes
    /// (`netmon.*`), the controller's decision points (`ctl.*`), and
    /// churn operations (`env.*`) — see `docs/OBSERVABILITY.md` for the
    /// span taxonomy. Timings live outside simulation state: results
    /// and journal contents are byte-identical with profiling on or off.
    pub fn enable_span_profiling(&mut self) {
        self.spans = Some(bass_obs::SpanProfiler::new());
    }

    /// Detaches and returns the span profiler, if profiling was enabled.
    pub fn take_span_profiler(&mut self) -> Option<bass_obs::SpanProfiler> {
        self.spans.take()
    }

    /// The span profiler, if profiling is enabled.
    pub fn span_profiler(&self) -> Option<&bass_obs::SpanProfiler> {
        self.spans.as_ref()
    }

    /// Folds an externally timed duration into the span taxonomy under
    /// `name` (no-op without profiling). Harnesses use this to account
    /// for setup work — scenario generation, mesh construction — that
    /// happens before the environment exists, so benches can separate
    /// one-time costs from stepping throughput.
    pub fn record_span(&mut self, name: &'static str, d: std::time::Duration) {
        if let Some(p) = &mut self.spans {
            p.record(name, d);
        }
    }

    /// Runs `f` against the environment, recording its wall-clock
    /// duration as `name` when span profiling is enabled. The profiler
    /// is parked for the duration of the call, so `f` sees an
    /// environment without interior `env.*` spans.
    fn with_span<T>(&mut self, name: &'static str, f: impl FnOnce(&mut Self) -> T) -> T {
        let mut spans = self.spans.take();
        let started = spans.as_ref().map(|_| std::time::Instant::now());
        let out = f(self);
        if let (Some(p), Some(t0)) = (spans.as_mut(), started) {
            p.record(name, t0.elapsed());
        }
        self.spans = spans;
        out
    }

    /// Enables online bandwidth-requirement profiling (the paper's §8
    /// future-work extension): every step, each edge's achieved usage is
    /// fed to an [`OnlineProfiler`]; once enough samples accumulate,
    /// [`SimEnv::profiled_requirements`] returns learned requirements
    /// that could replace the manifest's offline-profiled weights.
    pub fn enable_online_profiling(&mut self, profiler: OnlineProfiler) {
        self.mutation_epoch += 1;
        self.profiler = Some(profiler);
    }

    /// The requirements the online profiler has learned so far (empty
    /// when profiling is disabled or warm-up is incomplete).
    pub fn profiled_requirements(&self) -> Vec<(ComponentId, ComponentId, Bandwidth)> {
        self.profiler.as_ref().map(OnlineProfiler::estimates).unwrap_or_default()
    }

    /// Deploys the application: an initial full probe (the paper's
    /// startup capacity probe), pinned placements, then the configured
    /// scheduler for everything else, then flow creation.
    ///
    /// # Errors
    ///
    /// Fails if a pin is unknown, scheduling fails, or flows cannot be
    /// created.
    pub fn deploy(&mut self, pins: &[(ComponentId, NodeId)]) -> Result<Placement, EnvError> {
        self.with_span("env.deploy", |env| env.deploy_inner(pins))
    }

    fn deploy_inner(&mut self, pins: &[(ComponentId, NodeId)]) -> Result<Placement, EnvError> {
        self.netmon
            .full_probe_observed(&self.mesh, self.journal.as_mut());
        for &(cid, node) in pins {
            let comp = self
                .dag
                .component(cid)
                .ok_or(EnvError::UnknownComponent(cid))?;
            self.cluster
                .place(cid, comp.resources, node)
                .map_err(|e| EnvError::Schedule(ScheduleError::Baseline(e)))?;
        }
        let pinned: BTreeSet<ComponentId> = pins.iter().map(|&(c, _)| c).collect();
        let scheduler = BassScheduler::new(self.cfg.policy);
        // An empty DAG deploys trivially — the churning-scenario entry
        // point: start with nothing and admit app instances as they
        // arrive. The heuristics reject empty graphs, so skip them.
        if self.dag.component_count() == 0 {
            self.deployed = true;
            return Ok(self.cluster.placement());
        }
        match self.cfg.policy {
            PlacementPolicy::K3sDefault(policy) => {
                let mut baseline = bass_cluster::BaselineScheduler::new(policy);
                for component in self.dag.components() {
                    if pinned.contains(&component.id) {
                        continue;
                    }
                    let node = baseline
                        .pick_node(&self.cluster, component.resources)
                        .map_err(|e| EnvError::Schedule(ScheduleError::Baseline(e)))?;
                    self.cluster
                        .place(component.id, component.resources, node)
                        .map_err(|e| EnvError::Schedule(ScheduleError::Baseline(e)))?;
                }
            }
            _ => {
                let ordering = scheduler.ordering(&self.dag)?;
                let filtered = ComponentOrdering::new(
                    ordering
                        .groups()
                        .iter()
                        .map(|g| {
                            g.iter()
                                .copied()
                                .filter(|c| !pinned.contains(c))
                                .collect::<Vec<_>>()
                        })
                        .filter(|g: &Vec<ComponentId>| !g.is_empty())
                        .collect(),
                );
                pack_ordering(&filtered, &self.dag, &mut self.cluster, &self.mesh)
                    .map_err(ScheduleError::Placement)?;
            }
        }
        self.deployed = true;
        self.rebuild_all_edges()?;
        let placement = self.cluster.placement();
        if let Some(j) = self.journal.as_mut() {
            let crossing_mbps =
                bass_core::placement::crossing_bandwidth(&self.dag, &placement).as_mbps();
            let policy = self.cfg.policy.to_string();
            let t_s = self.mesh.now().as_secs_f64();
            for (&component, &node) in &placement {
                j.record(bass_obs::Event::PlacementDecided {
                    t_s,
                    component: component.0,
                    node: node.0,
                    policy: policy.clone(),
                    crossing_mbps,
                });
            }
            // Establish the capacity baseline so later scenario/trace
            // changes are reported as deltas against deploy time.
            self.mesh.emit_capacity_changes(j, "scenario");
        }
        Ok(placement)
    }

    /// Tears down all mesh flows for DAG edges and recreates them from
    /// the current placement.
    fn rebuild_all_edges(&mut self) -> Result<(), EnvError> {
        for (_, state) in std::mem::take(&mut self.edges) {
            if let EdgeState::Remote(f) = state {
                let _ = self.mesh.remove_flow(f);
            }
        }
        let edges: Vec<(ComponentId, ComponentId)> =
            self.dag.edges().iter().map(|e| (e.from, e.to)).collect();
        for (from, to) in edges {
            self.bind_edge(from, to)?;
        }
        Ok(())
    }

    /// (Re)creates the mesh flow backing one DAG edge from the current
    /// placement.
    fn bind_edge(&mut self, from: ComponentId, to: ComponentId) -> Result<(), EnvError> {
        if let Some(EdgeState::Remote(f)) = self.edges.remove(&(from, to)) {
            let _ = self.mesh.remove_flow(f);
        }
        let (Some(fn_), Some(tn)) = (self.cluster.node_of(from), self.cluster.node_of(to)) else {
            return Ok(()); // endpoint unplaced: nothing to bind
        };
        let state = if fn_ == tn {
            EdgeState::Local
        } else {
            let demand = self.edge_demand(from, to);
            EdgeState::Remote(self.mesh.add_flow(fn_, tn, demand)?)
        };
        self.edges.insert((from, to), state);
        Ok(())
    }

    /// The current offered demand of an edge: requirement × factor,
    /// zeroed while either endpoint is restarting.
    fn edge_demand(&self, from: ComponentId, to: ComponentId) -> Bandwidth {
        if self.component_down(from) || self.component_down(to) {
            return Bandwidth::ZERO;
        }
        let factor = self.demand_factor.get(&(from, to)).copied().unwrap_or(1.0);
        self.dag.bandwidth_between(from, to).scale(factor)
    }

    /// Scales an edge's offered demand relative to its declared
    /// requirement (1.0 = at requirement). Workload models call this to
    /// express time-varying load.
    pub fn set_edge_demand_factor(&mut self, from: ComponentId, to: ComponentId, factor: f64) {
        self.mutation_epoch += 1;
        self.demand_factor.insert((from, to), factor.max(0.0));
    }

    /// Scales every edge's demand at once (open-loop load scaling).
    pub fn set_global_demand_factor(&mut self, factor: f64) {
        let keys: Vec<(ComponentId, ComponentId)> =
            self.dag.edges().iter().map(|e| (e.from, e.to)).collect();
        for (f, t) in keys {
            self.set_edge_demand_factor(f, t, factor);
        }
    }

    /// Admits a new application instance into the running deployment:
    /// absorbs `app` into the deployment DAG with all component ids
    /// shifted by `id_offset` (names prefixed `"<app name>/"`), schedules
    /// the new components with the configured policy, and binds their
    /// edges. The rest of the deployment is untouched — this is the
    /// mid-run Poisson-arrival path of churning scenarios, not a
    /// redeploy. Returns the new (shifted) component ids.
    ///
    /// On a scheduling failure the admission rolls back completely
    /// (components evicted and removed from the DAG) and the error is
    /// returned — the scenario counts it as a rejected arrival.
    ///
    /// # Errors
    ///
    /// [`EnvError::NotDeployed`] before [`SimEnv::deploy`];
    /// [`EnvError::Dag`] when `id_offset` collides with existing
    /// components; [`EnvError::Schedule`] when the cluster cannot host
    /// the instance.
    pub fn admit_app(
        &mut self,
        app: &AppDag,
        id_offset: u32,
    ) -> Result<Vec<ComponentId>, EnvError> {
        self.mutation_epoch += 1;
        self.with_span("env.admit_app", |env| env.admit_app_inner(app, id_offset))
    }

    fn admit_app_inner(
        &mut self,
        app: &AppDag,
        id_offset: u32,
    ) -> Result<Vec<ComponentId>, EnvError> {
        if !self.deployed {
            return Err(EnvError::NotDeployed);
        }
        let prefix = format!("{}/", app.name());
        let added = self
            .dag
            .absorb(app, id_offset, &prefix)
            .map_err(EnvError::Dag)?;
        let result = (|| -> Result<(), EnvError> {
            match self.cfg.policy {
                PlacementPolicy::K3sDefault(policy) => {
                    let mut baseline = bass_cluster::BaselineScheduler::new(policy);
                    for &c in &added {
                        let resources =
                            self.dag.component(c).expect("just absorbed").resources;
                        let node = baseline
                            .pick_node(&self.cluster, resources)
                            .map_err(|e| EnvError::Schedule(ScheduleError::Baseline(e)))?;
                        self.cluster
                            .place(c, resources, node)
                            .map_err(|e| EnvError::Schedule(ScheduleError::Baseline(e)))?;
                    }
                }
                _ => {
                    // Order the fragment on its own shape, then shift the
                    // ids into deployment space before packing.
                    let scheduler = BassScheduler::new(self.cfg.policy);
                    let ordering = scheduler.ordering(app)?;
                    let shifted = ComponentOrdering::new(
                        ordering
                            .groups()
                            .iter()
                            .map(|g| {
                                g.iter().map(|c| ComponentId(c.0 + id_offset)).collect()
                            })
                            .collect(),
                    );
                    pack_ordering(&shifted, &self.dag, &mut self.cluster, &self.mesh)
                        .map_err(|e| EnvError::Schedule(ScheduleError::Placement(e)))?;
                }
            }
            for e in app.edges() {
                self.bind_edge(
                    ComponentId(e.from.0 + id_offset),
                    ComponentId(e.to.0 + id_offset),
                )?;
            }
            Ok(())
        })();
        if let Err(e) = result {
            for &c in &added {
                // Tear down any flows bound before the failure.
                let touching: Vec<_> = self
                    .edges
                    .keys()
                    .filter(|&&(a, b)| a == c || b == c)
                    .copied()
                    .collect();
                for key in touching {
                    if let Some(EdgeState::Remote(f)) = self.edges.remove(&key) {
                        let _ = self.mesh.remove_flow(f);
                    }
                }
                let _ = self.cluster.evict(c);
                self.dag.remove_component(c);
            }
            return Err(e);
        }
        if let Some(j) = self.journal.as_mut() {
            j.record(bass_obs::Event::AppAdmitted {
                t_s: self.mesh.now().as_secs_f64(),
                app: app.name().to_string(),
                components: added.len() as u32,
            });
        }
        Ok(added)
    }

    /// Retires a running application instance: removes its mesh flows,
    /// evicts its components from the cluster, deletes them (and their
    /// edges) from the deployment DAG, and clears every per-component
    /// trace the environment keeps (restart clocks, demand factors,
    /// displaced markers, goodput measurements). `label` is the instance
    /// name recorded in the journal.
    ///
    /// Unknown ids are skipped silently so a scenario can retire an
    /// instance whose admission was partially rejected.
    ///
    /// # Errors
    ///
    /// [`EnvError::NotDeployed`] before [`SimEnv::deploy`].
    pub fn retire_app(
        &mut self,
        label: &str,
        components: &[ComponentId],
    ) -> Result<(), EnvError> {
        self.mutation_epoch += 1;
        self.with_span("env.retire_app", |env| env.retire_app_inner(label, components))
    }

    fn retire_app_inner(
        &mut self,
        label: &str,
        components: &[ComponentId],
    ) -> Result<(), EnvError> {
        if !self.deployed {
            return Err(EnvError::NotDeployed);
        }
        let mut removed = 0u32;
        for &c in components {
            let touching: Vec<(ComponentId, ComponentId)> = self
                .edges
                .keys()
                .filter(|&&(a, b)| a == c || b == c)
                .copied()
                .collect();
            for key in touching {
                if let Some(EdgeState::Remote(f)) = self.edges.remove(&key) {
                    let _ = self.mesh.remove_flow(f);
                }
            }
            let _ = self.cluster.evict(c);
            if self.dag.remove_component(c) {
                removed += 1;
            }
            self.restarts.remove(&c);
            self.displaced.remove(&c);
            self.demand_factor.retain(|&(a, b), _| a != c && b != c);
            self.goodput.forget_touching(c);
        }
        if let Some(j) = self.journal.as_mut() {
            j.record(bass_obs::Event::AppRetired {
                t_s: self.mesh.now().as_secs_f64(),
                app: label.to_string(),
                components: removed,
            });
        }
        Ok(())
    }

    /// Advances the environment by one step.
    ///
    /// # Errors
    ///
    /// Propagates scenario/mesh errors.
    ///
    /// # Panics
    ///
    /// Panics if called before [`SimEnv::deploy`].
    pub fn step(&mut self) -> Result<(), EnvError> {
        // The profiler is parked in a local for the duration of the
        // tick: `step_inner` borrows it independently of `self`, which
        // lets the phase clock interleave with `&mut self` phase calls.
        let mut spans = self.spans.take();
        let result = self.step_inner(spans.as_mut());
        self.spans = spans;
        result
    }

    /// One tick with per-phase span profiling (the `tick.*` spans; see
    /// `docs/OBSERVABILITY.md`). Phases that profile their own interior
    /// — the mesh advance and the controller — receive the profiler and
    /// are followed by a [`PhaseClock::reset`](bass_obs::PhaseClock) or
    /// their own enclosing lap.
    fn step_inner(
        &mut self,
        mut profiler: Option<&mut bass_obs::SpanProfiler>,
    ) -> Result<(), EnvError> {
        assert!(self.deployed, "call deploy() before step()");
        let mut clock = bass_obs::PhaseClock::new(profiler.is_some());
        // 0. Injected faults due now, then re-placement of components a
        // crash displaced (possible again once capacity recovers).
        let now = self.mesh.now();
        let mut controller_restarted = false;
        for fault in self.cfg.faults.due(now) {
            controller_restarted |= self.apply_fault(fault)?;
        }
        self.replace_displaced()?;
        clock.lap(profiler.as_deref_mut(), "tick.faults");

        // 1. Scenario actions due now.
        let pending_before = self.scenario.remaining();
        self.scenario.apply_due(&mut self.mesh, now)?;
        if pending_before != self.scenario.remaining() {
            if let Some(j) = self.journal.as_mut() {
                self.mesh.emit_capacity_changes(j, "scenario");
            }
        }
        clock.lap(profiler.as_deref_mut(), "tick.scenario");

        // 1b. Routing protocol adaptation (ETX-like: expensive links are
        // avoided), independent of — and invisible to — the controller.
        if let Some(interval) = self.cfg.adaptive_routing {
            if now.saturating_since(self.last_route_update) >= interval {
                let weights: Vec<f64> = self
                    .mesh
                    .topology()
                    .links()
                    .map(|(_, link)| {
                        let cap = self
                            .mesh
                            .link_capacity(link.a, link.b)
                            .unwrap_or(Bandwidth::ZERO)
                            .as_bps();
                        // ETX grows as capacity shrinks; floor avoids ∞.
                        1e9 / cap.max(1e3)
                    })
                    .collect();
                self.mesh.use_weighted_routing(|lid| weights[lid.0]);
                self.stats.route_updates += 1;
                self.last_route_update = now;
            }
        }

        // 2. Push demands.
        let edge_keys: Vec<(ComponentId, ComponentId)> = self.edges.keys().copied().collect();
        for (from, to) in &edge_keys {
            if let Some(EdgeState::Remote(f)) = self.edges.get(&(*from, *to)) {
                let demand = self.edge_demand(*from, *to);
                self.mesh.set_flow_demand(*f, demand)?;
            }
        }
        clock.lap(profiler.as_deref_mut(), "tick.demand");

        // 3. Advance the network. The mesh profiles its own interior
        // phases (`mesh.*`), so the enclosing clock restarts afterwards
        // rather than double-attributing that time to a tick phase.
        self.mesh.advance_profiled(
            self.cfg.step,
            self.journal.as_mut(),
            profiler.as_deref_mut(),
        );
        clock.reset();
        let now = self.mesh.now();

        // 4. Passive goodput measurement.
        for (from, to) in &edge_keys {
            let required = {
                let factor = self.demand_factor.get(&(*from, *to)).copied().unwrap_or(1.0);
                self.dag.bandwidth_between(*from, *to).scale(factor)
            };
            let achieved = self.edge_achieved(*from, *to);
            self.goodput.record(*from, *to, required, achieved, now);
            if let Some(profiler) = &mut self.profiler {
                profiler.observe(*from, *to, achieved);
            }
        }
        clock.lap(profiler.as_deref_mut(), "tick.goodput");

        // 5. Controller. A restart injected this tick loses the tick: the
        // new controller process comes up after the decision window.
        if self.cfg.migrations_enabled && !controller_restarted {
            let outcome = self.controller.tick_profiled(
                &self.mesh,
                &mut self.netmon,
                &self.goodput,
                &self.dag,
                &self.cluster,
                &self.cfg.pinned,
                self.journal.as_mut(),
                profiler.as_deref_mut(),
            );
            clock.lap(profiler.as_deref_mut(), "tick.controller");
            let plans: Vec<MigrationPlan> = outcome
                .plans
                .iter()
                .copied()
                .filter(|p| !self.cfg.pinned.contains(&p.component))
                .collect();
            if !plans.is_empty() || !outcome.candidates.violations.is_empty() {
                self.stats.migration_rounds.push((
                    outcome.candidates.violating_component_count(),
                    plans.len(),
                ));
            }
            self.stats.unplaceable += outcome.unplaceable.len() as u64;
            for plan in plans {
                self.apply_migration(plan)?;
            }
            clock.lap(profiler.as_deref_mut(), "tick.migrate");
        } else {
            clock.reset();
        }

        // 6. Close the tick span.
        if let Some(j) = self.journal.as_mut() {
            j.record(bass_obs::Event::TickCompleted {
                t_s: now.as_secs_f64(),
                step_ms: self.cfg.step.as_secs_f64() * 1e3,
                flows: self.mesh.flow_count() as u32,
                migrations_total: self.stats.migrations.len() as u64,
            });
        }
        clock.lap(profiler, "tick.finalize");
        Ok(())
    }

    /// Runs for `duration`, invoking `hook` after every step.
    ///
    /// Under [`StepMode::Ticked`] every step executes in full. Under
    /// [`StepMode::EventDriven`] the loop follows each full step with as
    /// many provably quiescent skipped ticks as
    /// [`skippable_ticks`](Self::skippable_ticks) allows; `hook` still
    /// runs after every simulated tick, skipped or not, and a hook that
    /// mutates the environment immediately demotes the rest of its
    /// window back to full steps. Results, stats, and journal contents
    /// are byte-identical across the two modes — only wall-clock (and
    /// span-profiler counts, which track work actually performed)
    /// differs.
    ///
    /// # Errors
    ///
    /// Stops at the first step error.
    pub fn run_for(
        &mut self,
        duration: SimDuration,
        mut hook: impl FnMut(&mut SimEnv),
    ) -> Result<(), EnvError> {
        let end = self.mesh.now() + duration;
        let step_us = self.cfg.step.as_micros();
        while self.mesh.now() < end {
            self.step()?;
            hook(self);
            if self.cfg.step_mode != StepMode::EventDriven || step_us == 0 {
                continue;
            }
            'skip: while self.mesh.now() < end {
                let remaining =
                    end.saturating_since(self.mesh.now()).as_micros().div_ceil(step_us);
                let window = self.skippable_ticks(remaining);
                if window == 0 {
                    break;
                }
                for _ in 0..window {
                    let epoch = self.mutation_epoch;
                    self.skip_quiescent_ticks(1);
                    hook(self);
                    if self.mutation_epoch != epoch {
                        // The hook mutated the environment at this tick
                        // boundary; the rest of the window is no longer
                        // proven. Fall back to a full step.
                        break 'skip;
                    }
                }
            }
        }
        Ok(())
    }

    /// Upper bound on how many consecutive ticks, starting now, are
    /// provably quiescent — i.e. executing them in full would change
    /// nothing but the clock. Returns at most `max_ticks`, and 0
    /// whenever quiescence cannot be proven.
    ///
    /// A tick is quiescent when every input to [`step`](Self::step) is
    /// bitwise unchanged and every flow queue is at a bitwise fixed
    /// point ([`Mesh::queues_quiescent`]): the fault plan, the scenario
    /// script, and adaptive-routing refreshes are evaluated against the
    /// tick's **pre-advance** clock, while trace change-points,
    /// controller probe epochs, and restart expiries are bounded on the
    /// **post-advance** clock (see
    /// [`EventSource::pre_advance`](bass_core::EventSource::pre_advance)
    /// for why expiries take the stricter side) — so with `t0 = now()`,
    /// a pre-advance event at `t` caps the window at `⌈(t − t0)/step⌉`
    /// ticks and a post-advance event at `⌈(t − t0)/step⌉ − 1` (its tick
    /// *ends* at or after `t`). The controller is a guaranteed no-op
    /// between headroom-probe epochs, so probe epochs are the only
    /// controller events that matter; probe ticks themselves always
    /// execute in full. Online profiling, pending displaced components,
    /// and an undeployed environment disable skipping entirely.
    pub fn skippable_ticks(&self, max_ticks: u64) -> u64 {
        let step = self.cfg.step;
        let step_us = step.as_micros();
        if max_ticks == 0
            || step_us == 0
            || !self.deployed
            || !self.displaced.is_empty()
            || self.profiler.is_some()
            || !self.mesh.queues_quiescent(step)
        {
            return 0;
        }
        let t0 = self.mesh.now();
        let mut queue = EventQueue::new();
        if let Some(t) = self.cfg.faults.next_at() {
            queue.push(SimEvent { at: t, source: EventSource::Fault });
        }
        if let Some(t) = self.scenario.next_at() {
            queue.push(SimEvent { at: t, source: EventSource::Scenario });
        }
        if let Some(interval) = self.cfg.adaptive_routing {
            queue.push(SimEvent {
                at: self.last_route_update + interval,
                source: EventSource::RouteUpdate,
            });
        }
        for &(start, model) in self.restarts.values() {
            let expiry = start + model.downtime;
            // An expiry both clocks passed by the last executed tick
            // (pre-advance `t0 − step`, post-advance `t0`) can never
            // change a future tick; keeping it would pin the bound at 0.
            // One in `(t0 − step, t0]` still flips the *next* tick's
            // pre-advance demand push — the post-advance cap formula
            // yields 0 for it, forcing that tick to execute in full.
            if expiry.as_micros() + step_us <= t0.as_micros() {
                continue;
            }
            queue.push(SimEvent { at: expiry, source: EventSource::RestartExpiry });
        }
        if let Some(t) = self.mesh.next_trace_change_after(t0) {
            queue.push(SimEvent { at: t, source: EventSource::TraceChange });
        }
        if self.cfg.migrations_enabled {
            queue.push(SimEvent {
                at: self.netmon.next_headroom_probe_at(),
                source: EventSource::ProbeEpoch,
            });
        }
        let mut bound = max_ticks;
        while let Some(ev) = queue.pop() {
            let ticks_to_reach =
                ev.at.as_micros().saturating_sub(t0.as_micros()).div_ceil(step_us);
            let cap = if ev.source.pre_advance() {
                ticks_to_reach
            } else {
                ticks_to_reach.saturating_sub(1)
            };
            bound = bound.min(cap);
            if bound == 0 {
                return 0;
            }
        }
        bound
    }

    /// Advances `ticks` quiescent ticks: moves the clock and stamps each
    /// tick's `TickCompleted` journal event at its true time, nothing
    /// else. Only sound for ticks [`skippable_ticks`](Self::skippable_ticks)
    /// vouched for — a quiescent tick's full execution emits exactly the
    /// `TickCompleted` event (every capacity/flow-rate diff is empty and
    /// the controller never wakes), so the journal stays byte-identical.
    pub fn skip_quiescent_ticks(&mut self, ticks: u64) {
        for _ in 0..ticks {
            self.mesh.advance_quiescent(self.cfg.step);
            if let Some(j) = self.journal.as_mut() {
                j.record(bass_obs::Event::TickCompleted {
                    t_s: self.mesh.now().as_secs_f64(),
                    step_ms: self.cfg.step.as_secs_f64() * 1e3,
                    flows: self.mesh.flow_count() as u32,
                    migrations_total: self.stats.migrations.len() as u64,
                });
            }
        }
    }

    /// Applies one injected fault and journals it. Returns `true` when
    /// the fault was a controller restart (the controller loses its tick).
    fn apply_fault(&mut self, fault: Fault) -> Result<bool, EnvError> {
        let mut controller_restarted = false;
        let mut detail = String::new();
        match fault {
            Fault::NodeCrash { node } => {
                self.mesh.set_node_up(node, false)?;
                let victims: Vec<ComponentId> = self
                    .cluster
                    .placement()
                    .into_iter()
                    .filter(|&(_, n)| n == node)
                    .map(|(c, _)| c)
                    .collect();
                detail = format!("evicted {} component(s)", victims.len());
                for c in victims {
                    let _ = self.cluster.evict(c);
                    self.displaced.insert(c);
                    self.rebind_edges_touching(c)?;
                }
            }
            Fault::NodeRecover { node } => {
                self.mesh.set_node_up(node, true)?;
            }
            Fault::LinkDown { a, b } => {
                self.mesh.set_link_up(a, b, false)?;
            }
            Fault::LinkUp { a, b } => {
                self.mesh.set_link_up(a, b, true)?;
            }
            Fault::ProbeLossStart { p } => {
                // Fork a fresh stream per episode off the plan seed:
                // episode k replays identically regardless of how many
                // probes earlier episodes consumed.
                let mut root = bass_util::rng::SimRng::seed_from_u64(self.cfg.faults.seed());
                let rng = root.fork(1_000 + self.probe_loss_episodes);
                self.probe_loss_episodes += 1;
                self.netmon.set_probe_loss(p, rng);
                detail = format!("p={p}");
            }
            Fault::ProbeLossStop => {
                self.netmon.clear_probe_loss();
            }
            Fault::StaleTraceStart { a, b } => {
                self.mesh.freeze_link_trace(a, b)?;
            }
            Fault::StaleTraceStop { a, b } => {
                self.mesh.unfreeze_link_trace(a, b)?;
            }
            Fault::ControllerRestart => {
                self.controller.reset();
                controller_restarted = true;
            }
        }
        if let Some(j) = self.journal.as_mut() {
            j.record(bass_obs::Event::FaultInjected {
                t_s: self.mesh.now().as_secs_f64(),
                kind: fault.kind().to_string(),
                target: fault.target(),
                detail,
            });
        }
        Ok(controller_restarted)
    }

    /// Tries to re-place every displaced component on the best-ranked up
    /// node with room; newly placed components pay a restart and have
    /// their edges rebound.
    fn replace_displaced(&mut self) -> Result<(), EnvError> {
        if self.displaced.is_empty() {
            return Ok(());
        }
        let candidates: Vec<ComponentId> = self.displaced.iter().copied().collect();
        let mut placed_any = false;
        for c in candidates {
            let Some(comp) = self.dag.component(c) else {
                self.displaced.remove(&c);
                continue;
            };
            let resources = comp.resources;
            let target = bass_core::ranking::rank_nodes(&self.cluster, &self.mesh)
                .into_iter()
                .filter(|&n| self.mesh.node_is_up(n))
                .find(|&n| self.cluster.fits(n, resources).unwrap_or(false));
            let Some(node) = target else {
                continue; // still nowhere to go; retry next tick
            };
            self.cluster
                .place(c, resources, node)
                .map_err(|e| EnvError::Schedule(ScheduleError::Baseline(e)))?;
            self.displaced.remove(&c);
            // The component restarts on its new node.
            self.restarts.insert(c, (self.mesh.now(), self.cfg.restart));
            self.rebind_edges_touching(c)?;
            placed_any = true;
            if let Some(j) = self.journal.as_mut() {
                j.record(bass_obs::Event::PlacementDecided {
                    t_s: self.mesh.now().as_secs_f64(),
                    component: c.0,
                    node: node.0,
                    policy: "fault-recovery".to_string(),
                    crossing_mbps: 0.0,
                });
            }
        }
        if placed_any {
            if let Some(j) = self.journal.as_mut() {
                // Recompute the crossing bandwidth of the repaired
                // placement into the last event's metric registry.
                let crossing =
                    bass_core::placement::crossing_bandwidth(&self.dag, &self.cluster.placement());
                j.metrics_mut()
                    .set_gauge("fault_recovery.crossing_mbps", crossing.as_mbps());
            }
        }
        Ok(())
    }

    /// Rebinds every DAG edge touching `component` to the current
    /// placement (tears down flows whose endpoint is unplaced).
    fn rebind_edges_touching(&mut self, component: ComponentId) -> Result<(), EnvError> {
        let touching: Vec<(ComponentId, ComponentId)> = self
            .dag
            .edges()
            .iter()
            .filter(|e| e.from == component || e.to == component)
            .map(|e| (e.from, e.to))
            .collect();
        for (f, t) in touching {
            self.bind_edge(f, t)?;
        }
        Ok(())
    }

    fn apply_migration(&mut self, plan: MigrationPlan) -> Result<(), EnvError> {
        if self.cluster.relocate(plan.component, plan.to).is_err() {
            self.stats.unplaceable += 1;
            if let Some(j) = self.journal.as_mut() {
                j.record(bass_obs::Event::PlacementRejected {
                    t_s: self.mesh.now().as_secs_f64(),
                    component: plan.component.0,
                    reason: "relocate failed".to_string(),
                });
            }
            return Ok(());
        }
        let now = self.mesh.now();
        let mut model = self.cfg.restart;
        if let Some(state) = self.cfg.stateful_state {
            // §8 extension: checkpoint transfer extends the outage. Use
            // the bandwidth available from the old to the new node right
            // now; a starved path is clamped at 120 s.
            let avail = self
                .mesh
                .path_available(plan.from, plan.to)
                .unwrap_or(Bandwidth::ZERO);
            let transfer = state
                .transfer_time(avail)
                .min(SimDuration::from_secs(120));
            model.downtime += transfer;
        }
        self.restarts.insert(plan.component, (now, model));
        self.stats.migrations.push(MigrationRecord {
            at: now,
            component: plan.component,
            from: plan.from,
            to: plan.to,
        });
        self.rebind_edges_touching(plan.component)
    }

    // ----- queries the workload models use ---------------------------------

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.mesh.now()
    }

    /// The application DAG.
    pub fn dag(&self) -> &AppDag {
        &self.dag
    }

    /// The current placement.
    pub fn placement(&self) -> Placement {
        self.cluster.placement()
    }

    /// Immutable access to the mesh (for assertions and custom metrics).
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Mutable access to the mesh, for workloads that manage additional
    /// flows (e.g. video-conference client traffic).
    pub fn mesh_mut(&mut self) -> &mut Mesh {
        self.mutation_epoch += 1;
        &mut self.mesh
    }

    /// Immutable access to the cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The net-monitor (probe overhead accounting etc.).
    pub fn netmon(&self) -> &NetMonitor {
        &self.netmon
    }

    /// Run statistics (migrations, rounds, failures).
    pub fn stats(&self) -> &EnvStats {
        &self.stats
    }

    /// True while a component is hard-down due to a restart.
    pub fn component_down(&self, c: ComponentId) -> bool {
        self.restarts
            .get(&c)
            .is_some_and(|&(start, model)| model.is_down(start, self.mesh.now()))
    }

    /// Residual restart slowdown factor for a component (1.0 = healthy).
    pub fn slowdown(&self, c: ComponentId) -> f64 {
        self.restarts
            .get(&c)
            .map_or(1.0, |&(start, model)| model.slowdown_at(start, self.mesh.now()))
    }

    /// Marks a component as restarted now (for restart-cost experiments
    /// like Fig. 14a, independent of any migration).
    pub fn force_restart(&mut self, c: ComponentId) {
        self.mutation_epoch += 1;
        self.restarts.insert(c, (self.mesh.now(), self.cfg.restart));
    }

    /// The restart downtime charged to a component's most recent restart
    /// (includes the state-transfer extension for stateful migrations);
    /// `None` when the component never restarted.
    pub fn restart_downtime(&self, c: ComponentId) -> Option<SimDuration> {
        self.restarts.get(&c).map(|&(_, model)| model.downtime)
    }

    /// The bandwidth an edge currently achieves: its full demand when
    /// co-located, the flow's goodput when remote.
    pub fn edge_achieved(&self, from: ComponentId, to: ComponentId) -> Bandwidth {
        match self.edges.get(&(from, to)) {
            Some(EdgeState::Local) => self.edge_demand(from, to),
            Some(EdgeState::Remote(f)) => self.mesh.flow_goodput(*f),
            None => Bandwidth::ZERO,
        }
    }

    /// Loss fraction on an edge (0 when co-located).
    pub fn edge_loss(&self, from: ComponentId, to: ComponentId) -> f64 {
        match self.edges.get(&(from, to)) {
            Some(EdgeState::Remote(f)) => self.mesh.flow_loss(*f),
            _ => 0.0,
        }
    }

    /// End-to-end delay for a message of `size` on an edge, including
    /// restart downtime of either endpoint (a message sent to a
    /// restarting component waits out the remaining downtime).
    pub fn edge_delay(&self, from: ComponentId, to: ComponentId, size: DataSize) -> SimDuration {
        let now = self.mesh.now();
        let mut penalty = SimDuration::ZERO;
        for c in [from, to] {
            if let Some(&(start, model)) = self.restarts.get(&c) {
                if model.is_down(start, now) {
                    let until = start + model.downtime;
                    penalty = penalty.max(until.saturating_since(now));
                }
            }
        }
        let base = match self.edges.get(&(from, to)) {
            Some(EdgeState::Local) | None => self.mesh.hop_latency().for_hops(0),
            Some(EdgeState::Remote(f)) => self
                .mesh
                .flow_message_delay(*f, size)
                .unwrap_or(SimDuration::from_secs(600)),
        };
        penalty + base
    }

    /// How one DAG edge is currently realized.
    pub fn edge_state(&self, from: ComponentId, to: ComponentId) -> Option<EdgeState> {
        self.edges.get(&(from, to)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bass_appdag::catalog;
    use bass_cluster::NodeSpec;
    use bass_core::heuristics::BfsWeighting;
    use bass_mesh::Topology;

    fn mbps(x: f64) -> Bandwidth {
        Bandwidth::from_mbps(x)
    }

    fn camera_env(policy: PlacementPolicy) -> SimEnv {
        let mesh = Mesh::with_uniform_capacity(Topology::full_mesh(3), mbps(100.0)).unwrap();
        let cluster = Cluster::new((0..3).map(|i| NodeSpec::cores_mb(i, 12, 16384))).unwrap();
        let cfg = SimEnvConfig {
            policy,
            ..Default::default()
        };
        SimEnv::new(mesh, cluster, catalog::camera_pipeline(), cfg)
    }

    #[test]
    fn empty_dag_deploys_and_admits_apps_mid_run() {
        let mesh = Mesh::with_uniform_capacity(Topology::full_mesh(3), mbps(100.0)).unwrap();
        let cluster = Cluster::new((0..3).map(|i| NodeSpec::cores_mb(i, 24, 32768))).unwrap();
        let mut env = SimEnv::new(mesh, cluster, AppDag::new("city"), SimEnvConfig::default());
        // Admission before deploy is refused.
        assert!(matches!(
            env.admit_app(&catalog::camera_pipeline(), 1000),
            Err(EnvError::NotDeployed)
        ));
        env.deploy(&[]).unwrap();
        env.step().unwrap();

        let added = env.admit_app(&catalog::camera_pipeline(), 1000).unwrap();
        assert_eq!(added.len(), 5);
        assert_eq!(env.dag().component_count(), 5);
        assert!(env.dag().component(ComponentId(1001)).is_some());
        // All components placed, edges bound (local or remote).
        for &c in &added {
            assert!(env.placement().contains_key(&c));
        }
        env.run_for(SimDuration::from_secs(2), |_| {}).unwrap();

        // A second instance of the same shape under a different offset.
        let added2 = env.admit_app(&catalog::camera_pipeline(), 2000).unwrap();
        assert_eq!(env.dag().component_count(), 10);
        // Colliding offset rolls back without touching what's running.
        assert!(matches!(
            env.admit_app(&catalog::camera_pipeline(), 1000),
            Err(EnvError::Dag(_))
        ));
        assert_eq!(env.dag().component_count(), 10);

        env.retire_app("camera-0", &added).unwrap();
        assert_eq!(env.dag().component_count(), 5);
        for &c in &added {
            assert!(!env.placement().contains_key(&c));
        }
        // The survivor keeps running fine.
        env.run_for(SimDuration::from_secs(2), |_| {}).unwrap();
        for e in env.dag().clone().edges() {
            assert!((env.edge_achieved(e.from, e.to).as_mbps() - e.bandwidth.as_mbps()).abs() < 1e-6);
        }
        drop(added2);
    }

    #[test]
    fn rejected_admission_rolls_back_cleanly() {
        // A cluster too small for the social network: admission must fail
        // and leave zero residue (components, flows, placements).
        let mesh = Mesh::with_uniform_capacity(Topology::full_mesh(2), mbps(100.0)).unwrap();
        let cluster = Cluster::new((0..2).map(|i| NodeSpec::cores_mb(i, 2, 2048))).unwrap();
        let mut env = SimEnv::new(mesh, cluster, AppDag::new("city"), SimEnvConfig::default());
        env.deploy(&[]).unwrap();
        let flows_before = env.mesh().flow_count();
        assert!(matches!(
            env.admit_app(&catalog::social_network(50.0), 5000),
            Err(EnvError::Schedule(_))
        ));
        assert_eq!(env.dag().component_count(), 0);
        assert!(env.placement().is_empty());
        assert_eq!(env.mesh().flow_count(), flows_before);
        // The environment still steps.
        env.run_for(SimDuration::from_secs(1), |_| {}).unwrap();
    }

    #[test]
    fn span_profiling_never_changes_simulation_outputs() {
        // Identical envs, one with span profiling: journals (the full
        // decision record) must match byte for byte.
        let run = |profiled: bool| {
            let mut env = camera_env(PlacementPolicy::LongestPath);
            env.attach_journal(bass_obs::Journal::new());
            if profiled {
                env.enable_span_profiling();
            }
            env.deploy(&[]).unwrap();
            env.run_for(SimDuration::from_secs(5), |_| {}).unwrap();
            let journal = env.take_journal().unwrap();
            (journal.export_jsonl(), env.take_span_profiler())
        };
        let (plain_journal, no_profiler) = run(false);
        let (profiled_journal, profiler) = run(true);
        assert!(no_profiler.is_none());
        assert_eq!(plain_journal, profiled_journal);

        // The profiler saw every unconditional tick phase plus the
        // deploy churn span and the mesh allocation interior.
        let profiler = profiler.expect("profiler was enabled");
        for span in [
            "tick.faults",
            "tick.scenario",
            "tick.demand",
            "tick.goodput",
            "tick.controller",
            "tick.migrate",
            "tick.finalize",
            "mesh.queues",
            "mesh.trace_refresh",
            "mesh.water_fill",
            "mesh.usage_views",
            "env.deploy",
            "netmon.headroom_probe",
        ] {
            let stats = profiler
                .stats(span)
                .unwrap_or_else(|| panic!("span {span} missing"));
            assert!(stats.count > 0, "span {span} never completed");
        }
        assert_eq!(profiler.stats("env.deploy").unwrap().count, 1);
        // 5 s at the default step → one instance of each tick phase per tick.
        let ticks = profiler.stats("tick.finalize").unwrap().count;
        assert!(ticks >= 5, "expected at least 5 ticks, saw {ticks}");
        assert_eq!(profiler.stats("tick.faults").unwrap().count, ticks);
    }

    #[test]
    fn deploy_creates_flows_for_crossing_edges_only() {
        let mut env = camera_env(PlacementPolicy::BreadthFirst(BfsWeighting::EdgeWeight));
        env.deploy(&[]).unwrap();
        // BFS: {camera, sampler} | {detector, image, label} — only the
        // sampler→detector edge crosses.
        let dag = env.dag().clone();
        let id = |n: &str| dag.component_by_name(n).unwrap().id;
        assert_eq!(
            env.edge_state(id("camera-stream"), id("frame-sampler")),
            Some(EdgeState::Local)
        );
        assert!(matches!(
            env.edge_state(id("frame-sampler"), id("object-detector")),
            Some(EdgeState::Remote(_))
        ));
        assert_eq!(
            env.edge_state(id("object-detector"), id("image-listener")),
            Some(EdgeState::Local)
        );
        assert_eq!(env.mesh().flow_count(), 1);
    }

    #[test]
    fn healthy_run_achieves_all_edges() {
        let mut env = camera_env(PlacementPolicy::LongestPath);
        env.deploy(&[]).unwrap();
        env.run_for(SimDuration::from_secs(5), |_| {}).unwrap();
        let dag = env.dag().clone();
        for e in dag.edges() {
            let achieved = env.edge_achieved(e.from, e.to);
            assert!(
                (achieved.as_mbps() - e.bandwidth.as_mbps()).abs() < 1e-6,
                "edge {}→{} achieved {achieved}",
                e.from,
                e.to
            );
            assert_eq!(env.edge_loss(e.from, e.to), 0.0);
        }
        assert!(env.stats().migrations.is_empty());
    }

    #[test]
    fn link_squeeze_triggers_migration_and_recovery() {
        let mut env = camera_env(PlacementPolicy::BreadthFirst(BfsWeighting::EdgeWeight));
        env.deploy(&[]).unwrap();
        let dag = env.dag().clone();
        let id = |n: &str| dag.component_by_name(n).unwrap().id;
        let placement = env.placement();
        let sampler_node = placement[&id("frame-sampler")];
        let detector_node = placement[&id("object-detector")];
        // Squeeze the crossing link 60 s in, forever.
        env.set_scenario(Scenario::new().at(
            SimTime::from_secs(60),
            crate::scenario::Action::CapLink {
                a: sampler_node,
                b: detector_node,
                cap: Some(mbps(2.0)),
            },
        ));
        env.run_for(SimDuration::from_secs(300), |_| {}).unwrap();
        assert!(
            !env.stats().migrations.is_empty(),
            "controller must migrate off the squeezed link"
        );
        // After recovery the crossing edge achieves its demand again.
        let achieved = env.edge_achieved(id("frame-sampler"), id("object-detector"));
        assert!(
            achieved.as_mbps() > 5.9,
            "post-migration goodput {achieved}"
        );
    }

    #[test]
    fn migrations_can_be_disabled() {
        let mesh = Mesh::with_uniform_capacity(Topology::full_mesh(3), mbps(100.0)).unwrap();
        let cluster = Cluster::new((0..3).map(|i| NodeSpec::cores_mb(i, 12, 16384))).unwrap();
        let cfg = SimEnvConfig {
            policy: PlacementPolicy::BreadthFirst(BfsWeighting::EdgeWeight),
            migrations_enabled: false,
            ..Default::default()
        };
        let mut env = SimEnv::new(mesh, cluster, catalog::camera_pipeline(), cfg);
        env.deploy(&[]).unwrap();
        let dag = env.dag().clone();
        let id = |n: &str| dag.component_by_name(n).unwrap().id;
        let placement = env.placement();
        env.set_scenario(Scenario::new().at(
            SimTime::from_secs(10),
            crate::scenario::Action::CapLink {
                a: placement[&id("frame-sampler")],
                b: placement[&id("object-detector")],
                cap: Some(mbps(2.0)),
            },
        ));
        env.run_for(SimDuration::from_secs(200), |_| {}).unwrap();
        assert!(env.stats().migrations.is_empty());
        let achieved = env.edge_achieved(id("frame-sampler"), id("object-detector"));
        assert!(achieved.as_mbps() < 2.1, "stuck on squeezed link");
    }

    #[test]
    fn restart_downtime_zeroes_demand_and_penalizes_delay() {
        let mut env = camera_env(PlacementPolicy::BreadthFirst(BfsWeighting::EdgeWeight));
        env.deploy(&[]).unwrap();
        let dag = env.dag().clone();
        let id = |n: &str| dag.component_by_name(n).unwrap().id;
        env.run_for(SimDuration::from_secs(2), |_| {}).unwrap();
        env.force_restart(id("object-detector"));
        assert!(env.component_down(id("object-detector")));
        env.step().unwrap();
        // Demand of edges touching the detector collapses to zero.
        assert!(env
            .edge_achieved(id("frame-sampler"), id("object-detector"))
            .is_zero());
        // Delay includes remaining downtime.
        let d = env.edge_delay(
            id("frame-sampler"),
            id("object-detector"),
            DataSize::from_kilobytes(10),
        );
        assert!(d > SimDuration::from_secs(3), "delay {d}");
        // After the restart model's recovery window everything heals.
        env.run_for(SimDuration::from_secs(20), |_| {}).unwrap();
        assert!(!env.component_down(id("object-detector")));
        assert_eq!(env.slowdown(id("object-detector")), 1.0);
    }

    #[test]
    fn pinned_components_deploy_and_never_migrate() {
        let mesh = Mesh::with_uniform_capacity(Topology::full_mesh(3), mbps(100.0)).unwrap();
        let cluster = Cluster::new((0..3).map(|i| NodeSpec::cores_mb(i, 12, 16384))).unwrap();
        let dag = catalog::camera_pipeline();
        let camera = dag.component_by_name("camera-stream").unwrap().id;
        let cfg = SimEnvConfig {
            policy: PlacementPolicy::LongestPath,
            pinned: [camera].into_iter().collect(),
            ..Default::default()
        };
        let mut env = SimEnv::new(mesh, cluster, dag, cfg);
        let placement = env.deploy(&[(camera, NodeId(2))]).unwrap();
        assert_eq!(placement[&camera], NodeId(2));
        assert_eq!(placement.len(), 5);
    }

    #[test]
    fn demand_factor_scales_offered_load() {
        let mut env = camera_env(PlacementPolicy::BreadthFirst(BfsWeighting::EdgeWeight));
        env.deploy(&[]).unwrap();
        let dag = env.dag().clone();
        let id = |n: &str| dag.component_by_name(n).unwrap().id;
        env.set_edge_demand_factor(id("frame-sampler"), id("object-detector"), 0.5);
        env.run_for(SimDuration::from_secs(2), |_| {}).unwrap();
        let achieved = env.edge_achieved(id("frame-sampler"), id("object-detector"));
        assert!((achieved.as_mbps() - 3.0).abs() < 1e-6, "{achieved}");
    }

    #[test]
    fn table1_style_round_accounting() {
        let mut env = camera_env(PlacementPolicy::BreadthFirst(BfsWeighting::EdgeWeight));
        env.deploy(&[]).unwrap();
        let dag = env.dag().clone();
        let id = |n: &str| dag.component_by_name(n).unwrap().id;
        let placement = env.placement();
        env.set_scenario(Scenario::new().at(
            SimTime::from_secs(30),
            crate::scenario::Action::CapLink {
                a: placement[&id("frame-sampler")],
                b: placement[&id("object-detector")],
                cap: Some(mbps(2.0)),
            },
        ));
        env.run_for(SimDuration::from_secs(200), |_| {}).unwrap();
        let rounds = &env.stats().migration_rounds;
        assert!(!rounds.is_empty());
        // Each round migrated no more components than violated.
        for &(violating, migrated) in rounds {
            assert!(migrated <= violating);
        }
    }

    #[test]
    fn adaptive_routing_reroutes_around_degraded_links() {
        // Line-ish topology: 0-1-2 plus a weak chord 0-2. Static min-hop
        // routing sends the 0→2 edge over the chord; adaptive ETX
        // routing detours via node 1 once the chord's weight dominates.
        let mut topo = Topology::new();
        for i in 0..3 {
            topo.add_node(NodeId(i)).unwrap();
        }
        topo.add_link(NodeId(0), NodeId(1)).unwrap();
        topo.add_link(NodeId(1), NodeId(2)).unwrap();
        topo.add_link(NodeId(0), NodeId(2)).unwrap();
        let mut mesh = Mesh::with_uniform_capacity(topo, mbps(100.0)).unwrap();
        mesh.set_link_source(
            NodeId(0),
            NodeId(2),
            bass_mesh::CapacitySource::Constant(mbps(2.0)),
        )
        .unwrap();
        let cluster = Cluster::new((0..3).map(|i| NodeSpec::cores_mb(i, 12, 16384))).unwrap();
        let cfg = SimEnvConfig {
            policy: PlacementPolicy::BreadthFirst(BfsWeighting::EdgeWeight),
            migrations_enabled: false,
            adaptive_routing: Some(SimDuration::from_secs(5)),
            ..Default::default()
        };
        // Pin the pipeline so camera+sampler sit on n0 and the detector
        // side on n2 — the crossing edge must traverse 0→2.
        let dag = catalog::camera_pipeline();
        let ids: Vec<ComponentId> = dag.component_ids().collect();
        let pins: Vec<(ComponentId, NodeId)> = ids
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, if i < 2 { NodeId(0) } else { NodeId(2) }))
            .collect();
        let mut env = SimEnv::new(mesh, cluster, dag, cfg);
        env.deploy(&pins).unwrap();
        let dag = env.dag().clone();
        let id = |n: &str| dag.component_by_name(n).unwrap().id;
        // Before adaptation kicks in, the crossing edge is starved at 2 Mbps.
        env.run_for(SimDuration::from_secs(1), |_| {}).unwrap();
        assert!(env.edge_achieved(id("frame-sampler"), id("object-detector")).as_mbps() < 2.1);
        // After a routing update, it detours via n1 and achieves 6 Mbps.
        env.run_for(SimDuration::from_secs(30), |_| {}).unwrap();
        assert!(env.stats().route_updates >= 1);
        let achieved = env.edge_achieved(id("frame-sampler"), id("object-detector"));
        assert!(achieved.as_mbps() > 5.9, "rerouted goodput {achieved}");
        assert_eq!(
            env.mesh().path(NodeId(0), NodeId(2)).unwrap(),
            &[NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn stateful_migration_extends_downtime_by_transfer_time() {
        // Identical squeeze scenario, run stateless vs with a 100 MB
        // checkpoint: the stateful migration's downtime must include the
        // state-transfer time over the (healthy) target path.
        let run = |state: Option<DataSize>| {
            let (mesh, cluster) = (
                Mesh::with_uniform_capacity(Topology::full_mesh(3), mbps(100.0)).unwrap(),
                Cluster::new((0..3).map(|i| NodeSpec::cores_mb(i, 12, 16384))).unwrap(),
            );
            let cfg = SimEnvConfig {
                policy: PlacementPolicy::BreadthFirst(BfsWeighting::EdgeWeight),
                stateful_state: state,
                ..Default::default()
            };
            let mut env = SimEnv::new(mesh, cluster, catalog::camera_pipeline(), cfg);
            env.deploy(&[]).unwrap();
            let dag = env.dag().clone();
            let id = |n: &str| dag.component_by_name(n).unwrap().id;
            let placement = env.placement();
            env.set_scenario(Scenario::new().at(
                SimTime::from_secs(30),
                crate::scenario::Action::CapLink {
                    a: placement[&id("frame-sampler")],
                    b: placement[&id("object-detector")],
                    cap: Some(mbps(1.5)),
                },
            ));
            env.run_for(SimDuration::from_secs(200), |_| {}).unwrap();
            let migrated = env.stats().migrations.first().copied();
            (env, migrated)
        };
        let (stateless_env, m1) = run(None);
        let (stateful_env, m2) = run(Some(DataSize::from_megabytes(100)));
        let (m1, m2) = (m1.expect("stateless migrates"), m2.expect("stateful migrates"));
        let d_stateless = stateless_env.restart_downtime(m1.component).unwrap();
        let d_stateful = stateful_env.restart_downtime(m2.component).unwrap();
        // 800 Mbit over a ~100 Mbps path ≈ 8 s extra.
        assert!(
            d_stateful > d_stateless + SimDuration::from_secs(5),
            "stateful {d_stateful} vs stateless {d_stateless}"
        );
        assert!(d_stateful < d_stateless + SimDuration::from_secs(120));
    }

    #[test]
    fn online_profiler_learns_edge_requirements() {
        let mut env = camera_env(PlacementPolicy::BreadthFirst(BfsWeighting::EdgeWeight));
        env.enable_online_profiling(bass_netmon::OnlineProfiler::new(0.95, 1.2, 10));
        env.deploy(&[]).unwrap();
        assert!(env.profiled_requirements().is_empty(), "needs warm-up");
        env.run_for(SimDuration::from_secs(5), |_| {}).unwrap();
        let estimates = env.profiled_requirements();
        let dag = env.dag().clone();
        assert_eq!(estimates.len(), dag.edge_count());
        // Each estimate lands near requirement × safety factor (the
        // healthy LAN serves every edge fully).
        for (from, to, est) in estimates {
            let required = dag.bandwidth_between(from, to);
            let ratio = est.as_bps() / required.as_bps();
            assert!((1.0..=1.3).contains(&ratio), "{from}->{to}: ratio {ratio}");
        }
    }

    #[test]
    fn node_crash_evicts_and_recovery_replaces() {
        let mut env = camera_env(PlacementPolicy::BreadthFirst(BfsWeighting::EdgeWeight));
        env.attach_journal(bass_obs::Journal::new());
        env.deploy(&[]).unwrap();
        let dag = env.dag().clone();
        let id = |n: &str| dag.component_by_name(n).unwrap().id;
        let placement = env.placement();
        let victim_node = placement[&id("object-detector")];
        let victims: Vec<ComponentId> = placement
            .iter()
            .filter(|&(_, &n)| n == victim_node)
            .map(|(&c, _)| c)
            .collect();
        env.set_fault_plan(FaultPlan::new().node_crash(
            victim_node,
            SimTime::from_secs(10),
            SimTime::from_secs(40),
        ));
        // While the node is down the victims are either displaced or
        // re-placed on surviving nodes — never on the down node.
        env.run_for(SimDuration::from_secs(20), |e| {
            for (c, n) in e.placement() {
                assert!(e.mesh().node_is_up(n), "{c} placed on down node {n}");
            }
        })
        .unwrap();
        assert!(!env.mesh().node_is_up(victim_node));
        for &c in &victims {
            let on_down = env.placement().get(&c) == Some(&victim_node);
            assert!(!on_down, "{c} still on crashed node");
        }
        // After recovery everything is placed somewhere and heals.
        env.run_for(SimDuration::from_secs(60), |_| {}).unwrap();
        assert!(env.mesh().node_is_up(victim_node));
        assert!(env.displaced().is_empty(), "all components re-placed");
        assert_eq!(env.placement().len(), 5);
        env.cluster().check_invariants().unwrap();
        let journal = env.journal().unwrap();
        assert_eq!(journal.count("fault_injected"), 2);
        let kinds: Vec<String> = journal
            .events_of_kind("fault_injected")
            .map(|e| match e {
                bass_obs::Event::FaultInjected { kind, .. } => kind.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kinds, ["node_crash", "node_recover"]);
        // Every eviction-driven re-placement was journalled.
        assert!(journal
            .events_of_kind("placement_decided")
            .any(|e| matches!(e, bass_obs::Event::PlacementDecided { policy, .. } if policy == "fault-recovery")));
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_none() {
        let run = |with_empty_plan: bool| {
            let mut env = camera_env(PlacementPolicy::BreadthFirst(BfsWeighting::EdgeWeight));
            env.attach_journal(bass_obs::Journal::new());
            if with_empty_plan {
                env.set_fault_plan(FaultPlan::new().with_seed(99));
            }
            env.deploy(&[]).unwrap();
            env.run_for(SimDuration::from_secs(30), |_| {}).unwrap();
            env.take_journal().unwrap().export_jsonl()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn controller_restart_loses_the_tick_and_the_cooldown() {
        let mut env = camera_env(PlacementPolicy::BreadthFirst(BfsWeighting::EdgeWeight));
        env.attach_journal(bass_obs::Journal::new());
        env.deploy(&[]).unwrap();
        env.set_fault_plan(FaultPlan::new().controller_restart(SimTime::from_secs(10)));
        env.run_for(SimDuration::from_secs(20), |_| {}).unwrap();
        let journal = env.journal().unwrap();
        assert_eq!(journal.count("fault_injected"), 1);
        match journal.events_of_kind("fault_injected").next().unwrap() {
            bass_obs::Event::FaultInjected { kind, target, .. } => {
                assert_eq!(kind, "controller_restart");
                assert_eq!(target, "controller");
            }
            _ => unreachable!(),
        };
    }

    #[test]
    #[should_panic(expected = "deploy")]
    fn step_before_deploy_panics() {
        let mut env = camera_env(PlacementPolicy::LongestPath);
        let _ = env.step();
    }

    #[test]
    fn journal_reconstructs_the_migration_decision() {
        let mut env = camera_env(PlacementPolicy::BreadthFirst(BfsWeighting::EdgeWeight));
        env.attach_journal(bass_obs::Journal::new());
        env.deploy(&[]).unwrap();
        // Deploy narrates one initial full probe and every binding.
        assert_eq!(env.journal().unwrap().count("probe_completed"), 1);
        assert_eq!(env.journal().unwrap().count("placement_decided"), 5);
        let dag = env.dag().clone();
        let id = |n: &str| dag.component_by_name(n).unwrap().id;
        let placement = env.placement();
        env.set_scenario(Scenario::new().at(
            SimTime::from_secs(60),
            crate::scenario::Action::CapLink {
                a: placement[&id("frame-sampler")],
                b: placement[&id("object-detector")],
                cap: Some(mbps(2.0)),
            },
        ));
        env.run_for(SimDuration::from_secs(120), |_| {}).unwrap();
        assert!(!env.stats().migrations.is_empty());
        let journal = env.take_journal().unwrap();
        // The squeeze is visible as a scenario-caused capacity change …
        let cut = journal
            .events()
            .find_map(|e| match e {
                bass_obs::Event::LinkCapacityChanged { t_s, new_mbps, cause, .. } => {
                    Some((*t_s, *new_mbps, cause.clone()))
                }
                _ => None,
            })
            .expect("capacity cut journalled");
        assert_eq!(cut, (60.0, 2.0, "scenario".to_string()));
        // … followed by trigger and target events in causal order.
        for kind in ["migration_triggered", "migration_target_chosen"] {
            assert!(journal.count(kind) >= 1, "missing {kind}");
        }
        let t_trigger = journal
            .events_of_kind("migration_triggered")
            .next()
            .unwrap()
            .t_s();
        let t_target = journal
            .events_of_kind("migration_target_chosen")
            .next()
            .unwrap()
            .t_s();
        assert!(cut.0 <= t_trigger && t_trigger <= t_target);
        // Ticks were spanned and the final tick counts the migrations.
        assert!(journal.count("tick_completed") >= 1000);
        match journal.events_of_kind("tick_completed").last().unwrap() {
            bass_obs::Event::TickCompleted { migrations_total, .. } => {
                assert_eq!(*migrations_total, env.stats().migrations.len() as u64);
            }
            other => panic!("expected TickCompleted, got {other:?}"),
        }
        // The registry lands in a Recorder as obs.event.* series.
        let mut rec = crate::Recorder::new();
        rec.absorb_metrics(journal.metrics(), env.now());
        assert_eq!(
            rec.series("obs.event.migration_target_chosen").len(),
            1
        );
    }

    /// Contract: `SimEnv` never resets an attached journal. Counters
    /// accumulate across every `deploy` the journal observes — including
    /// a *failed* re-deploy, whose startup probe is charged before the
    /// scheduler rejects the already-placed components. Callers wanting
    /// per-run counters must attach a fresh `Journal` per run.
    #[test]
    fn journal_counters_accumulate_across_deploys() {
        let mut env = camera_env(PlacementPolicy::LongestPath);
        env.attach_journal(bass_obs::Journal::new());
        env.deploy(&[]).unwrap();
        {
            let journal = env.journal().unwrap();
            assert_eq!(journal.count("probe_completed"), 1);
            assert_eq!(journal.count("placement_decided"), 5);
        }

        // Re-deploying on the same env fails (components are already
        // placed) but still runs — and journals — the startup probe.
        assert!(env.deploy(&[]).is_err());
        {
            let journal = env.journal().unwrap();
            assert_eq!(journal.count("probe_completed"), 2);
            assert_eq!(journal.count("placement_decided"), 5);
        }

        // Moving the journal to a fresh env keeps accumulating: nothing
        // in deploy() zeroes the counters or drops recorded events.
        let journal = env.take_journal().unwrap();
        let mut env2 = camera_env(PlacementPolicy::LongestPath);
        env2.attach_journal(journal);
        env2.deploy(&[]).unwrap();
        let journal = env2.journal().unwrap();
        assert_eq!(journal.count("probe_completed"), 3);
        assert_eq!(journal.count("placement_decided"), 10);
        assert_eq!(journal.total_recorded(), journal.len() as u64);
    }

    /// A camera env with a squeeze/release scenario (migration fires),
    /// run under `mode` with per-tick hook counting; returns the journal
    /// bytes, final flow rates, migration count, hook invocations, and
    /// the number of ticks that executed in full.
    fn squeeze_run(mode: StepMode) -> (String, Vec<u64>, usize, u64, u64) {
        let mesh = Mesh::with_uniform_capacity(Topology::full_mesh(3), mbps(100.0)).unwrap();
        let cluster = Cluster::new((0..3).map(|i| NodeSpec::cores_mb(i, 12, 16384))).unwrap();
        let cfg = SimEnvConfig {
            policy: PlacementPolicy::BreadthFirst(BfsWeighting::EdgeWeight),
            step_mode: mode,
            ..Default::default()
        };
        let mut env = SimEnv::new(mesh, cluster, catalog::camera_pipeline(), cfg);
        env.attach_journal(bass_obs::Journal::new());
        env.enable_span_profiling();
        env.deploy(&[]).unwrap();
        let dag = env.dag().clone();
        let id = |n: &str| dag.component_by_name(n).unwrap().id;
        let placement = env.placement();
        let sampler_node = placement[&id("frame-sampler")];
        let detector_node = placement[&id("object-detector")];
        env.set_scenario(Scenario::new().restrict_link(
            sampler_node,
            detector_node,
            SimTime::from_secs(60),
            SimTime::from_secs(120),
            mbps(1.0),
        ));
        let mut hooks = 0u64;
        env.run_for(SimDuration::from_secs(180), |_| hooks += 1).unwrap();
        let rates: Vec<u64> = (0..env.mesh().flow_count())
            .map(|i| env.mesh().flow_rate(FlowId(i as u64)).as_bps().to_bits())
            .collect();
        let migrations = env.stats().migrations.len();
        let executed = env
            .take_span_profiler()
            .unwrap()
            .stats("tick.finalize")
            .map_or(0, |s| s.count);
        let journal = env.take_journal().unwrap().export_jsonl();
        (journal, rates, migrations, hooks, executed)
    }

    #[test]
    fn event_driven_run_is_byte_identical_and_actually_skips() {
        let (journal_t, rates_t, mig_t, hooks_t, executed_t) = squeeze_run(StepMode::Ticked);
        let (journal_e, rates_e, mig_e, hooks_e, executed_e) =
            squeeze_run(StepMode::EventDriven);
        assert_eq!(journal_t, journal_e);
        assert_eq!(rates_t, rates_e);
        assert_eq!(mig_t, mig_e);
        assert!(mig_t > 0, "squeeze should trigger a migration");
        // The hook fires once per simulated tick in both modes.
        assert_eq!(hooks_t, 1800);
        assert_eq!(hooks_e, 1800);
        // Ticked executes every tick; event-driven skips the quiescent
        // stretches between scenario actions and 30 s probe epochs.
        assert_eq!(executed_t, 1800);
        assert!(
            executed_e < executed_t / 2,
            "event-driven executed {executed_e} of {executed_t} ticks"
        );
    }

    #[test]
    fn hook_mutations_demote_skip_windows_not_correctness() {
        let run = |mode: StepMode| {
            let mut env = camera_env(PlacementPolicy::LongestPath);
            env.cfg.step_mode = mode;
            env.attach_journal(bass_obs::Journal::new());
            env.deploy(&[]).unwrap();
            let mut ticks = 0u64;
            env.run_for(SimDuration::from_secs(60), |e| {
                ticks += 1;
                // Mutate mid-window, at a tick no event predicts.
                if ticks == 137 {
                    e.set_global_demand_factor(0.25);
                }
                if ticks == 411 {
                    e.set_global_demand_factor(1.0);
                }
            })
            .unwrap();
            (env.take_journal().unwrap().export_jsonl(), env.now())
        };
        let ticked = run(StepMode::Ticked);
        let event = run(StepMode::EventDriven);
        assert_eq!(ticked, event);
    }

    #[test]
    fn skippable_ticks_guards_refuse_unprovable_states() {
        let mut env = camera_env(PlacementPolicy::LongestPath);
        // Not deployed yet.
        assert_eq!(env.skippable_ticks(100), 0);
        env.deploy(&[]).unwrap();
        // No allocation computed before the first step.
        assert_eq!(env.skippable_ticks(100), 0);
        env.step().unwrap();
        let window = env.skippable_ticks(10_000);
        // Quiescent until the first 30 s probe epoch: the probe tick
        // (post-advance clock) must execute, everything before may skip.
        assert_eq!(window, 299);
        assert_eq!(env.skippable_ticks(50), 50);
        // Online profiling observes every tick — skipping would starve it.
        env.enable_online_profiling(OnlineProfiler::new(0.95, 1.1, 10));
        assert_eq!(env.skippable_ticks(100), 0);
    }

    #[test]
    fn skipped_windows_cross_probe_epochs_identically() {
        // No scenario, no faults: the only events are probe epochs. A
        // long event-driven run must land probes on the same ticks.
        let run = |mode: StepMode| {
            let mut env = camera_env(PlacementPolicy::LongestPath);
            env.cfg.step_mode = mode;
            env.attach_journal(bass_obs::Journal::new());
            env.deploy(&[]).unwrap();
            env.run_for(SimDuration::from_secs(300), |_| {}).unwrap();
            let j = env.take_journal().unwrap();
            (j.count("probe_completed"), j.export_jsonl())
        };
        let (probes_t, journal_t) = run(StepMode::Ticked);
        let (probes_e, journal_e) = run(StepMode::EventDriven);
        assert_eq!(probes_t, probes_e);
        assert_eq!(journal_t, journal_e);
        assert!(probes_t >= 10, "expected ≥10 probe epochs, saw {probes_t}");
    }
}
