//! Migration cost bookkeeping.
//!
//! Migrating a component is not free: the component must be evicted,
//! rescheduled, and restarted, and the application sees degraded service
//! while connections re-establish. The paper measures ~20–30 s for the
//! Pion server to restart and re-establish WebRTC connections (§6.2.3,
//! §6.3.2) and a latency spike from 552 ms to ≈4.9 s around a social
//! network component restart (Fig. 14a).

use bass_appdag::ComponentId;
use bass_mesh::NodeId;
use bass_util::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How a component restart degrades service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RestartModel {
    /// Time during which the component is completely unavailable
    /// (rescheduling + container start + connection re-establishment).
    pub downtime: SimDuration,
    /// After downtime ends, residual degradation (e.g. cold caches,
    /// reconnection storms) decays linearly over this long.
    pub recovery: SimDuration,
    /// Peak latency-inflation factor right after the restart.
    pub recovery_slowdown: f64,
}

impl Default for RestartModel {
    /// The social-network calibration: latency jumps from ~0.55 s to
    /// ~4.9 s around a restart (Fig. 14a), i.e. ≈9× inflation decaying
    /// over a few seconds, with a short hard outage.
    fn default() -> Self {
        RestartModel {
            downtime: SimDuration::from_secs(5),
            recovery: SimDuration::from_secs(10),
            recovery_slowdown: 9.0,
        }
    }
}

impl RestartModel {
    /// The WebRTC calibration: ~20 s to restart the SFU and re-establish
    /// connections (§6.3.2), no residual slowdown afterwards.
    pub fn webrtc() -> Self {
        RestartModel {
            downtime: SimDuration::from_secs(20),
            recovery: SimDuration::ZERO,
            recovery_slowdown: 1.0,
        }
    }

    /// Latency inflation factor at `now` for a restart that began at
    /// `started`: infinite during downtime is approximated by the caller
    /// treating [`RestartModel::is_down`] specially; afterwards the
    /// factor decays linearly from `recovery_slowdown` to 1.
    pub fn slowdown_at(&self, started: SimTime, now: SimTime) -> f64 {
        if now < started {
            return 1.0;
        }
        let since = now.saturating_since(started);
        if since < self.downtime {
            return self.recovery_slowdown.max(1.0);
        }
        if self.recovery.is_zero() {
            return 1.0;
        }
        let into_recovery = since - self.downtime;
        if into_recovery >= self.recovery {
            return 1.0;
        }
        let frac = into_recovery.as_secs_f64() / self.recovery.as_secs_f64();
        let peak = self.recovery_slowdown.max(1.0);
        peak + (1.0 - peak) * frac
    }

    /// True while the component is hard-down.
    pub fn is_down(&self, started: SimTime, now: SimTime) -> bool {
        now >= started && now.saturating_since(started) < self.downtime
    }

    /// Time when service is fully restored.
    pub fn fully_recovered_at(&self, started: SimTime) -> SimTime {
        started + self.downtime + self.recovery
    }
}

/// A record of one performed migration (for Table 1-style reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationRecord {
    /// When the migration was triggered.
    pub at: SimTime,
    /// Which component moved.
    pub component: ComponentId,
    /// Node it left.
    pub from: NodeId,
    /// Node it joined.
    pub to: NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_timeline() {
        let m = RestartModel {
            downtime: SimDuration::from_secs(5),
            recovery: SimDuration::from_secs(10),
            recovery_slowdown: 9.0,
        };
        let start = SimTime::from_secs(100);
        // Before the restart: no effect.
        assert_eq!(m.slowdown_at(start, SimTime::from_secs(50)), 1.0);
        assert!(!m.is_down(start, SimTime::from_secs(50)));
        // During downtime.
        assert!(m.is_down(start, SimTime::from_secs(102)));
        assert_eq!(m.slowdown_at(start, SimTime::from_secs(102)), 9.0);
        // Midway through recovery: halfway back to 1.
        let mid = m.slowdown_at(start, SimTime::from_secs(110));
        assert!((mid - 5.0).abs() < 1e-9, "{mid}");
        // Fully recovered.
        assert_eq!(m.slowdown_at(start, SimTime::from_secs(115)), 1.0);
        assert_eq!(m.fully_recovered_at(start), SimTime::from_secs(115));
    }

    #[test]
    fn webrtc_model_is_outage_only() {
        let m = RestartModel::webrtc();
        let start = SimTime::from_secs(10);
        assert!(m.is_down(start, SimTime::from_secs(29)));
        assert!(!m.is_down(start, SimTime::from_secs(30)));
        assert_eq!(m.slowdown_at(start, SimTime::from_secs(31)), 1.0);
    }

    #[test]
    fn degenerate_models_are_safe() {
        let m = RestartModel {
            downtime: SimDuration::ZERO,
            recovery: SimDuration::ZERO,
            recovery_slowdown: 0.5, // below 1 must clamp
        };
        let t = SimTime::from_secs(1);
        assert!(!m.is_down(t, t));
        assert_eq!(m.slowdown_at(t, t), 1.0);
    }
}
