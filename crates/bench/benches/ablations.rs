//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - BFS frontier weighting: edge weight (Fig. 6-consistent) vs the
//!   pseudocode's cumulative path weight — measures cost and, via the
//!   summary printed by the `experiments` binary, placement quality.
//! - Hybrid heuristic vs its two parents on a mixed-shape DAG.
//! - Migration candidate selection (Algorithm 3) on the social DAG.

use bass_appdag::{catalog, Component, ComponentId, ResourceReq};
use bass_appdag::AppDag;
use bass_core::heuristics::{breadth_first, hybrid, longest_path, BfsWeighting};
use bass_core::migration::{find_candidates, MigrationConfig};
use bass_core::placement::pack_ordering;
use bass_cluster::{Cluster, NodeSpec};
use bass_mesh::{Mesh, Topology};
use bass_netmon::GoodputMonitor;
use bass_util::time::{SimDuration, SimTime};
use bass_util::units::Bandwidth;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30)
}
use std::hint::black_box;

/// A mixed DAG: a high-fan-out star feeding a deep pipeline.
fn mixed_dag() -> AppDag {
    let mut dag = AppDag::new("mixed");
    for i in 1..=16u32 {
        dag.add_component(Component::new(
            ComponentId(i),
            format!("c{i}"),
            ResourceReq::cores_mb(1, 128),
        ))
        .expect("fresh");
    }
    // Star: 1 → 2..8.
    for i in 2..=8u32 {
        dag.add_edge(ComponentId(1), ComponentId(i), Bandwidth::from_mbps(9.0 - i as f64 * 0.5))
            .expect("valid");
    }
    // Pipeline: 9 → 10 → … → 16.
    for i in 9..=15u32 {
        dag.add_edge(ComponentId(i), ComponentId(i + 1), Bandwidth::from_mbps(4.0))
            .expect("valid");
    }
    // Bridge star to pipeline.
    dag.add_edge(ComponentId(5), ComponentId(9), Bandwidth::from_mbps(1.0))
        .expect("valid");
    dag
}

fn bench_heuristic_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristic_variants");
    let dag = mixed_dag();
    group.bench_function("bfs_edge_weight", |b| {
        b.iter(|| breadth_first(black_box(&dag), BfsWeighting::EdgeWeight).expect("valid"))
    });
    group.bench_function("bfs_cumulative", |b| {
        b.iter(|| breadth_first(black_box(&dag), BfsWeighting::CumulativePath).expect("valid"))
    });
    group.bench_function("longest_path", |b| {
        b.iter(|| longest_path(black_box(&dag)).expect("valid"))
    });
    group.bench_function("hybrid", |b| {
        b.iter(|| hybrid(black_box(&dag), 3).expect("valid"))
    });
    group.finish();
}

fn bench_pack(c: &mut Criterion) {
    let dag = catalog::social_network(50.0);
    let ordering = longest_path(&dag).expect("valid");
    let mesh = Mesh::with_uniform_capacity(Topology::full_mesh(4), Bandwidth::from_mbps(100.0))
        .expect("connected");
    c.bench_function("pack_social_27", |b| {
        b.iter(|| {
            let mut cluster =
                Cluster::new((0..4).map(|i| NodeSpec::cores_mb(i, 16, 16_384))).expect("unique");
            pack_ordering(black_box(&ordering), &dag, &mut cluster, &mesh).expect("fits")
        })
    });
}

fn bench_candidate_selection(c: &mut Criterion) {
    let dag = catalog::social_network(400.0);
    let mut mesh = Mesh::with_uniform_capacity(Topology::full_mesh(4), Bandwidth::from_mbps(50.0))
        .expect("connected");
    let mut cluster =
        Cluster::new((0..4).map(|i| NodeSpec::cores_mb(i, 16, 16_384))).expect("unique");
    let ordering = longest_path(&dag).expect("valid");
    pack_ordering(&ordering, &dag, &mut cluster, &mesh).expect("fits");
    let placement = cluster.placement();
    let mut goodput = GoodputMonitor::new();
    for e in dag.edges() {
        goodput.record(e.from, e.to, e.bandwidth, e.bandwidth.scale(0.4), SimTime::ZERO);
    }
    mesh.advance(SimDuration::from_millis(100));
    let cfg = MigrationConfig::default();
    c.bench_function("algorithm3_social_27", |b| {
        b.iter(|| {
            find_candidates(
                black_box(&dag),
                &placement,
                &goodput,
                &mesh,
                &cfg,
                &Default::default(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_heuristic_variants, bench_pack, bench_candidate_selection
}
criterion_main!(benches);
