//! Fig. 2: bandwidth variation on two CityLab links (10-second rolling
//! mean). Paper: link A mean 19.9 Mbps with σ = 10% of the mean; link B
//! mean 7.62 Mbps with σ = 27%.

use crate::{ExperimentReport, Row, RunMode};
use bass_trace::OuTraceConfig;
use bass_util::time::SimDuration;

/// Runs the experiment.
pub fn run(mode: RunMode) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig2",
        "bandwidth variation on two CityLab links",
        "link A: mean 19.9 Mbps, std 10% of mean; link B: mean 7.62 Mbps, std 27% of mean",
    );
    // Trace statistics need the full window even in quick mode (the
    // generator is cheap); only the relaxation-time ratio matters.
    let _ = mode;
    let duration = SimDuration::from_secs(1800);
    let window = SimDuration::from_secs(10);

    for (label, mean, rel_std, seed) in [
        ("link A (stable)", 19.9, 0.10, 21),
        ("link B (volatile)", 7.62, 0.27, 22),
    ] {
        let trace = OuTraceConfig::new(label, mean)
            .relative_std(rel_std)
            .generate(seed, duration);
        let rolled = trace.rolling_mean_mbps(window);
        let stats = rolled.stats();
        report.push_row(
            Row::new(label)
                .with("mean_mbps", stats.mean())
                .with("std_pct_of_mean", 100.0 * stats.std_dev() / stats.mean())
                .with("min_mbps", stats.min().unwrap_or(0.0))
                .with("max_mbps", stats.max().unwrap_or(0.0)),
        );
        let points: Vec<(f64, f64)> = rolled
            .iter()
            .map(|(t, v)| (t.as_secs_f64(), v))
            .collect();
        report.push_series(label, &points, 200);
    }
    report.note("rolling window: 10 s, matching the figure's presentation");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_match_paper() {
        let rep = run(RunMode::Quick);
        let a = rep.row("link A (stable)").unwrap();
        let b = rep.row("link B (volatile)").unwrap();
        assert!((a.value("mean_mbps").unwrap() - 19.9).abs() < 1.5);
        assert!((b.value("mean_mbps").unwrap() - 7.62).abs() < 1.0);
        // The volatile link has a clearly higher relative std. (Rolling
        // means damp both, but the ordering and rough ratio survive.)
        let a_std = a.value("std_pct_of_mean").unwrap();
        let b_std = b.value("std_pct_of_mean").unwrap();
        assert!(b_std > 1.5 * a_std, "volatile {b_std}% vs stable {a_std}%");
        assert_eq!(rep.series.len(), 2);
    }
}
