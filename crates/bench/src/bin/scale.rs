//! Mesh hot-path scaling benchmark.
//!
//! ```text
//! scale [--quick] [--out FILE]
//! ```
//!
//! Times `Mesh::advance` ticks/sec on a synthetic districted city mesh
//! from 10 nodes × 50 flows up to 2000 nodes × 20000 flows, for the
//! incremental engine, the delta engine (serial and sharded), and (at
//! sizes where it finishes in reasonable time) the pre-incremental
//! dense reference engine, then writes the measurements to
//! `BENCH_mesh.json` (override with `--out`). All engines produce
//! bit-identical allocations, so every ratio is a pure cost comparison
//! — see `docs/PERFORMANCE.md` for how to read it.
//!
//! The workload models the steady state the delta engine is built for
//! (see `docs/ARCHITECTURE.md`): the grid is sliced into districts,
//! every flow stays inside its district (so each district is one
//! constraint component), demands are underloaded (queues stay empty),
//! and each tick one seeded link-capacity change arrives — the "common
//! OU-trace tick" of a community mesh, where one link's reported
//! bandwidth moves and the rest of the city is quiescent.
//!
//! `--quick` shrinks the size ladder and the per-point measuring window
//! to a fraction of a second; CI runs it as a smoke test (and asserts
//! delta beats incremental at the 500-node rung) to keep this harness
//! from rotting.

use bass_core::StepMode;
use bass_mesh::mesh::AllocEngine;
use bass_mesh::{CapacitySource, Mesh, NodeId, Topology};
use bass_scenario::{CampaignOptions, ScenarioSpec, TopologySpec};
use bass_util::rng::SimRng;
use bass_util::time::SimDuration;
use bass_util::units::Bandwidth;
use serde::Serialize;
use std::process::ExitCode;

/// Every topology/flow/capacity draw derives from this seed, so the
/// workload is identical across runs and engines.
const SEED: u64 = 0x5CA1E;

/// Nodes per district: the grid is cut into row-bands of roughly this
/// many nodes, and flows never leave their band.
const DISTRICT_NODES: usize = 100;

/// One engine's throughput at one mesh size.
#[derive(Debug, Clone, Serialize)]
struct EngineResult {
    /// Simulated ticks completed inside the measuring window.
    ticks: u64,
    /// Wall-clock seconds the window actually took.
    elapsed_s: f64,
    /// `ticks / elapsed_s` — the headline number.
    ticks_per_sec: f64,
}

/// Every engine's throughput at one mesh size.
#[derive(Debug, Clone, Serialize)]
struct SizeResult {
    /// Node count of the synthetic grid.
    nodes: usize,
    /// Flow count over it.
    flows: usize,
    /// Link count the grid ended up with.
    links: usize,
    /// Districts the grid was cut into (= constraint components).
    districts: usize,
    /// The steady-state engine (`AllocEngine::Incremental`).
    incremental: EngineResult,
    /// The delta engine (`AllocEngine::Delta`), serial.
    delta: EngineResult,
    /// Serial delta under the fan-out stream (one capped link per
    /// district per tick — every district dirty): the baseline the
    /// sharded fill is gated against.
    delta_fanout: Option<EngineResult>,
    /// The delta engine with a 4-thread sharded component fill, under
    /// the same fan-out stream; only measured where several districts
    /// exist to fan out.
    delta_sharded: Option<EngineResult>,
    /// The 1-dirty-district steady state: serial delta with every
    /// perturbation confined to district 0, so tick after tick the same
    /// single component is dirty and the rest of the city never moves —
    /// the regime the dirty-set pipeline (O(dirty) demand/capacity/
    /// usage/queue passes) is built for. Only measured where several
    /// districts exist.
    delta_steady: Option<EngineResult>,
    /// The same district-0 stream with dirty-set tracking switched off
    /// (`Mesh::set_dirty_tracking(false)`): every tick re-walks all
    /// flows and links, the pre-dirty-set behaviour. The gap to
    /// `delta_steady` is what the dirty-set pipeline buys.
    delta_steady_fullref: Option<EngineResult>,
    /// The pre-incremental reference (`AllocEngine::Dense`); skipped at
    /// sizes where a single dense tick is impractically slow.
    dense: Option<EngineResult>,
    /// `incremental.ticks_per_sec / dense.ticks_per_sec`, when measured.
    speedup: Option<f64>,
    /// `delta.ticks_per_sec / incremental.ticks_per_sec`.
    delta_speedup: f64,
}

/// Ticked vs event-driven throughput on the quiescence-heavy city-500
/// campaign (see `docs/PERFORMANCE.md`).
#[derive(Debug, Clone, Serialize)]
struct StepModeResult {
    /// Scenario name (`"city-500"`).
    scenario: String,
    /// Ticks per replica.
    horizon_ticks: u64,
    /// One-time scenario/mesh setup (identical in both modes; excluded
    /// from the throughput numbers below).
    setup_s: f64,
    /// The reference loop, executing every tick.
    ticked: EngineResult,
    /// The event-driven loop, skipping provably quiescent windows.
    event_driven: EngineResult,
    /// `event_driven.ticks_per_sec / ticked.ticks_per_sec`.
    speedup: f64,
}

/// The whole `BENCH_mesh.json` document.
#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    /// Document discriminator (`"mesh_scale"`).
    bench: String,
    /// `"full"` or `"quick"`.
    mode: String,
    /// Simulated step per tick, in milliseconds.
    step_ms: u64,
    /// One entry per point on the size ladder.
    sizes: Vec<SizeResult>,
    /// The event-driven rung: ticked vs event-driven on city-500.
    event_driven: StepModeResult,
}

/// Builds a connected row-major grid: node `i` links right to `i+1`
/// (same row) and down to `i+width`. A partial last row stays connected
/// through its up-links.
fn grid_topology(nodes: usize) -> Topology {
    let width = (nodes as f64).sqrt().ceil() as usize;
    let mut topo = Topology::new();
    for i in 0..nodes {
        topo.add_node(NodeId(i as u32)).expect("fresh node id");
    }
    for i in 0..nodes {
        let right = i + 1;
        if right < nodes && right % width != 0 {
            topo.add_link(NodeId(i as u32), NodeId(right as u32)).expect("fresh link");
        }
        let down = i + width;
        if down < nodes {
            topo.add_link(NodeId(i as u32), NodeId(down as u32)).expect("fresh link");
        }
    }
    topo
}

/// How many districts an `nodes`-node grid is cut into.
fn district_count(nodes: usize) -> usize {
    nodes.div_ceil(DISTRICT_NODES).max(1)
}

/// The discrete per-flow demand levels, mirroring the paper's three
/// application classes (camera clip upload, video-conference leg,
/// social-network sync). Quantized demands matter for speed as well as
/// realism: each water-filling round freezes every flow at the level it
/// reaches, so rounds per component stay bounded by the level count
/// instead of degenerating to one round per distinct demand.
const DEMAND_LEVELS_MBPS: [f64; 3] = [0.1, 0.15, 0.25];

/// Builds the benchmark mesh for one ladder point: grid topology cut
/// into row-band districts, per-link constant capacities drawn from
/// 50–150 Mbps, and `flows` flows at one of [`DEMAND_LEVELS_MBPS`]
/// whose endpoints stay inside one district. The load is deliberately
/// light: queues stay empty, so on a tick without a capacity change no
/// demand moves — the delta engine's quiescent case.
fn build_mesh(nodes: usize, flows: usize, engine: AllocEngine, jobs: usize) -> Mesh {
    let mut rng = SimRng::seed_from_u64(SEED ^ (nodes as u64) << 16 ^ flows as u64);
    let topo = grid_topology(nodes);
    let link_ids: Vec<_> = topo.links().map(|(lid, l)| (lid, l.a, l.b)).collect();
    let mut mesh = Mesh::new(topo).expect("grid is connected");
    mesh.set_alloc_engine(engine);
    mesh.set_alloc_jobs(jobs);
    for (_, a, b) in &link_ids {
        let cap = Bandwidth::from_mbps(rng.uniform(50.0, 150.0));
        mesh.set_link_source(*a, *b, CapacitySource::Constant(cap))
            .expect("link exists");
    }
    let districts = district_count(nodes);
    let per_district = nodes.div_ceil(districts);
    for _ in 0..flows {
        let d = rng.below(districts as u64) as usize;
        let lo = d * per_district;
        let hi = ((d + 1) * per_district).min(nodes);
        let span = (hi - lo) as u64;
        let src = lo as u64 + rng.below(span);
        let mut dst = lo as u64 + rng.below(span);
        while dst == src {
            dst = lo as u64 + rng.below(span);
        }
        let demand = Bandwidth::from_mbps(
            DEMAND_LEVELS_MBPS[rng.below(DEMAND_LEVELS_MBPS.len() as u64) as usize],
        );
        mesh.add_flow(NodeId(src as u32), NodeId(dst as u32), demand)
            .expect("valid endpoints");
    }
    mesh
}

/// Which links the per-tick perturbation stream may touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stream {
    /// One capped link per tick, drawn mesh-wide — at most one dirty
    /// district per tick, a *different* one each tick. The sparse
    /// regime the delta engine targets.
    Sparse,
    /// One capped link per tick *in every district*, dirtying them all
    /// at once — the storm-recovery regime the sharded fill exists for,
    /// and the only stream where `delta x4` and serial delta run
    /// different code.
    Fanout,
    /// One capped link per tick, always drawn from district 0 — the
    /// 1-dirty-district steady state, where the same single component
    /// is dirty tick after tick and the rest of the city never moves.
    /// The regime the dirty-set demand/capacity/usage/queue passes are
    /// built for.
    Steady,
}

/// Ticks `mesh` for at least `window_s` wall-clock seconds (after a
/// short warmup) and reports the achieved tick rate. Each tick first
/// applies one seeded link-capacity change (`tc`-style cap between 30
/// and 120 Mbps, sometimes above the link's base rate and therefore
/// inert) — the sparse-perturbation regime the delta engine targets.
/// The perturbation stream depends only on the seed and the tick index,
/// so every engine replays the identical workload. `stream` picks
/// which links the perturbations may touch — see [`Stream`].
fn measure(
    mut mesh: Mesh,
    nodes: usize,
    step: SimDuration,
    window_s: f64,
    stream: Stream,
) -> EngineResult {
    let districts = district_count(nodes);
    let per_district = nodes.div_ceil(districts);
    let by_district = || {
        let mut groups = vec![Vec::new(); districts];
        for (_, l) in mesh.topology().links() {
            groups[(l.a.0 as usize / per_district).min(districts - 1)].push((l.a, l.b));
        }
        groups
    };
    let groups: Vec<Vec<(NodeId, NodeId)>> = match stream {
        Stream::Fanout => by_district(),
        Stream::Steady => vec![by_district().swap_remove(0)],
        Stream::Sparse => vec![mesh.topology().links().map(|(_, l)| (l.a, l.b)).collect()],
    };
    let mut rng = SimRng::seed_from_u64(SEED ^ 0xD15F ^ nodes as u64);
    let perturb = |mesh: &mut Mesh, rng: &mut SimRng| {
        for group in &groups {
            let (a, b) = group[rng.below(group.len() as u64) as usize];
            let cap = Bandwidth::from_mbps(rng.uniform(30.0, 120.0));
            mesh.set_link_cap(a, b, Some(cap)).expect("link exists");
        }
    };
    for _ in 0..3 {
        perturb(&mut mesh, &mut rng);
        mesh.advance(step);
    }
    let started = std::time::Instant::now();
    let mut ticks = 0u64;
    loop {
        perturb(&mut mesh, &mut rng);
        mesh.advance(step);
        ticks += 1;
        let elapsed = started.elapsed().as_secs_f64();
        if elapsed >= window_s {
            return EngineResult {
                ticks,
                elapsed_s: elapsed,
                ticks_per_sec: ticks as f64 / elapsed,
            };
        }
    }
}

/// The quiescence-heavy city-500 scenario the event-driven rung runs:
/// 500 nodes, under-subscribed OU links sampled every 60 s, rare fades,
/// slow churn, no fault storm — long stretches where every tick is a
/// provable no-op, which is exactly the regime community meshes sit in
/// overnight (see `docs/PERFORMANCE.md`).
fn city500_spec(horizon_ticks: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::small_reference();
    spec.name = "city-500".to_string();
    spec.topology = TopologySpec::RandomGeometric { nodes: 500, radius: 0.12 };
    spec.nodes.gateways = 8;
    // Under-subscribed, mildly varying links on a coarse sample grid:
    // capacity change-points arrive once a minute, aligned across links.
    spec.links.mean_mbps_min = 40.0;
    spec.links.mean_mbps_max = 80.0;
    spec.links.relative_std_min = 0.02;
    spec.links.relative_std_max = 0.05;
    spec.links.sample_interval_s = 60.0;
    spec.links.fade_rate_per_min = 0.005;
    spec.workload.max_concurrent = 20;
    spec.workload.initial_apps = 8;
    spec.workload.arrival_rate_per_s = 0.002;
    spec.workload.mean_lifetime_s = 4000.0;
    spec.faults = None;
    spec.horizon_ticks = horizon_ticks;
    spec.step_ms = 1000;
    spec.sample_every_ticks = 100;
    spec.replicas = 1;
    spec
}

/// Runs the city-500 campaign in one step mode and reports simulated
/// ticks per wall-clock second plus the summary bytes (the caller
/// cross-checks the two modes byte-for-byte). Throughput is measured
/// over stepping time only: the one-time scenario/mesh setup — identical
/// work in both modes, reported separately as `setup_s` — is subtracted
/// via the `campaign.setup` span so the rung compares the loops, not
/// the constructor. Same convention as the ladder above, which also
/// builds its mesh outside the timed region.
fn measure_campaign(spec: &ScenarioSpec, step_mode: StepMode) -> (EngineResult, f64, String) {
    let opts = CampaignOptions { step_mode, profile: true, ..CampaignOptions::default() };
    let started = std::time::Instant::now();
    let run = bass_scenario::run_campaign_opts(spec, SEED, &opts)
        .expect("city-500 campaign runs");
    let elapsed = started.elapsed().as_secs_f64();
    let setup_s = run
        .profiler
        .as_ref()
        .and_then(|p| p.stats("campaign.setup"))
        .map_or(0.0, |s| s.total_ns as f64 / 1e9);
    let stepping = (elapsed - setup_s).max(1e-9);
    let ticks = run.summary.aggregate.ticks;
    (
        EngineResult { ticks, elapsed_s: stepping, ticks_per_sec: ticks as f64 / stepping },
        setup_s,
        run.summary.to_json(),
    )
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = std::path::PathBuf::from("BENCH_mesh.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(path) => out = std::path::PathBuf::from(path),
                None => {
                    eprintln!("--out requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: scale [--quick] [--out FILE]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    // The dense path is O(links × flows × path-len) per tick, so above
    // 100 nodes a single dense point would dominate the whole run; the
    // incremental and delta ladders keep going to show the trend.
    // Quick keeps the 1000-node point: it is the rung CI's smoke gate
    // uses to assert the sharded fill never falls behind serial delta.
    let (ladder, window_s, dense_max_nodes): (&[(usize, usize)], f64, usize) = if quick {
        (&[(10, 50), (100, 1000), (500, 5000), (1000, 10000)], 0.05, 100)
    } else {
        (
            &[
                (10, 50),
                (50, 500),
                (100, 1000),
                (200, 2000),
                (500, 5000),
                (1000, 10000),
                (2000, 20000),
            ],
            1.0,
            100,
        )
    };
    let step = SimDuration::from_millis(100);

    let mut sizes = Vec::new();
    for &(nodes, flows) in ladder {
        let mesh = build_mesh(nodes, flows, AllocEngine::Incremental, 1);
        let links = mesh.topology().link_count();
        let districts = district_count(nodes);
        let incremental = measure(mesh, nodes, step, window_s, Stream::Sparse);
        let delta = measure(
            build_mesh(nodes, flows, AllocEngine::Delta, 1),
            nodes,
            step,
            window_s,
            Stream::Sparse,
        );
        // The sharded comparison runs under the fan-out stream (all
        // districts dirty each tick) for both job counts: that is the
        // regime where the two fills actually diverge, and the pair CI
        // gates on (`delta x4` must never fall behind serial delta).
        let delta_fanout = (districts > 1).then(|| {
            measure(
                build_mesh(nodes, flows, AllocEngine::Delta, 1),
                nodes,
                step,
                window_s,
                Stream::Fanout,
            )
        });
        let delta_sharded = (districts > 1).then(|| {
            measure(
                build_mesh(nodes, flows, AllocEngine::Delta, 4),
                nodes,
                step,
                window_s,
                Stream::Fanout,
            )
        });
        // The 1-dirty-district pair replays the identical district-0
        // stream with dirty-set tracking on (the default) and off (the
        // pre-dirty-set full-refresh behaviour); the two runs produce
        // bit-identical allocations, so the ratio is a pure cost
        // comparison and CI gates on it at the 500-node rung.
        let delta_steady = (districts > 1).then(|| {
            measure(
                build_mesh(nodes, flows, AllocEngine::Delta, 1),
                nodes,
                step,
                window_s,
                Stream::Steady,
            )
        });
        let delta_steady_fullref = (districts > 1).then(|| {
            let mut mesh = build_mesh(nodes, flows, AllocEngine::Delta, 1);
            mesh.set_dirty_tracking(false);
            measure(mesh, nodes, step, window_s, Stream::Steady)
        });
        let dense = (nodes <= dense_max_nodes).then(|| {
            measure(
                build_mesh(nodes, flows, AllocEngine::Dense, 1),
                nodes,
                step,
                window_s,
                Stream::Sparse,
            )
        });
        let speedup = dense
            .as_ref()
            .map(|d| incremental.ticks_per_sec / d.ticks_per_sec);
        let delta_speedup = delta.ticks_per_sec / incremental.ticks_per_sec;
        println!(
            "{nodes:>4} nodes {flows:>5} flows {links:>4} links {districts:>2} districts | \
             incremental {:>9.0} ticks/s | delta {:>9.0} ticks/s ({delta_speedup:.1}x){}{}{}",
            incremental.ticks_per_sec,
            delta.ticks_per_sec,
            match (&delta_fanout, &delta_sharded) {
                (Some(f), Some(s)) => format!(
                    " | fanout serial {:>8.0} vs x4 {:>8.0} ticks/s ({:.1}x)",
                    f.ticks_per_sec,
                    s.ticks_per_sec,
                    s.ticks_per_sec / f.ticks_per_sec
                ),
                _ => String::new(),
            },
            match (&delta_steady, &delta_steady_fullref) {
                (Some(d), Some(r)) => format!(
                    " | steady dirty {:>8.0} vs full {:>8.0} ticks/s ({:.1}x)",
                    d.ticks_per_sec,
                    r.ticks_per_sec,
                    d.ticks_per_sec / r.ticks_per_sec
                ),
                _ => String::new(),
            },
            match (&dense, speedup) {
                (Some(d), Some(s)) =>
                    format!(" | dense {:>7.0} ticks/s ({s:.1}x)", d.ticks_per_sec),
                _ => String::from(" | dense skipped"),
            }
        );
        sizes.push(SizeResult {
            nodes,
            flows,
            links,
            districts,
            incremental,
            delta,
            delta_fanout,
            delta_sharded,
            delta_steady,
            delta_steady_fullref,
            dense,
            speedup,
            delta_speedup,
        });
    }

    // The event-driven rung: the same city-500 campaign through both
    // step modes. The summaries must match byte-for-byte — a throughput
    // number for a run that drifted would be meaningless.
    let spec = city500_spec(if quick { 800 } else { 6_000 });
    let (ticked, ticked_setup, ticked_summary) = measure_campaign(&spec, StepMode::Ticked);
    let (event_driven, event_setup, event_summary) =
        measure_campaign(&spec, StepMode::EventDriven);
    if ticked_summary != event_summary {
        eprintln!("event-driven city-500 summary diverged from ticked mode");
        return ExitCode::FAILURE;
    }
    let ed_speedup = event_driven.ticks_per_sec / ticked.ticks_per_sec;
    println!(
        "city-500 x {} ticks | ticked {:>7.0} ticks/s | event-driven {:>8.0} ticks/s \
         ({ed_speedup:.1}x, setup {:.2}s excluded, summaries byte-identical)",
        spec.horizon_ticks,
        ticked.ticks_per_sec,
        event_driven.ticks_per_sec,
        ticked_setup + event_setup,
    );
    let event_driven = StepModeResult {
        scenario: spec.name.clone(),
        horizon_ticks: spec.horizon_ticks,
        setup_s: ticked_setup + event_setup,
        ticked,
        event_driven,
        speedup: ed_speedup,
    };

    let report = BenchReport {
        bench: "mesh_scale".to_owned(),
        mode: if quick { "quick" } else { "full" }.to_owned(),
        step_ms: 100,
        sizes,
        event_driven,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out.display());
    ExitCode::SUCCESS
}
