//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--out DIR] [id...]
//! ```
//!
//! With no ids, every experiment runs in paper order. Each report is
//! printed to stdout and written as JSON under `--out` (default
//! `results/`).

use bass_bench::experiments::{run, ALL_IDS};
use bass_bench::RunMode;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut mode = RunMode::Full;
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => mode = RunMode::Quick,
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: experiments [--quick] [--out DIR] [id...]");
                println!("experiments: {}", ALL_IDS.join(" "));
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() {
        ids = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for id in &ids {
        let started = std::time::Instant::now();
        match run(id, mode) {
            Some(report) => {
                println!("{report}");
                println!(
                    "({} completed in {:.1}s)\n",
                    id,
                    started.elapsed().as_secs_f64()
                );
                let path = out_dir.join(format!("{id}.json"));
                match serde_json::to_string_pretty(&report) {
                    Ok(json) => {
                        if let Err(e) = std::fs::write(&path, json) {
                            eprintln!("cannot write {}: {e}", path.display());
                            failed = true;
                        }
                    }
                    Err(e) => {
                        eprintln!("cannot serialize {id}: {e}");
                        failed = true;
                    }
                }
            }
            None => {
                eprintln!("unknown experiment '{id}' (known: {})", ALL_IDS.join(", "));
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
