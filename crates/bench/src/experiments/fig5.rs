//! Fig. 5: social-network average end-to-end latency over time with a
//! 25 Mbps squeeze for 2 minutes at 400 RPS (k3s placement, no
//! migrations — the motivation experiment).
//!
//! Paper: latency increases by an order of magnitude during the
//! bandwidth-restricted period.

use crate::experiments::common::{node_of, social_lan, Knobs};
use crate::{ExperimentReport, Row, RunMode};
use bass_apps::ArrivalProcess;
use bass_cluster::BaselinePolicy;
use bass_core::PlacementPolicy;
use bass_emu::{Recorder, Scenario};
use bass_util::time::{SimDuration, SimTime};
use bass_util::units::Bandwidth;

/// Runs the experiment.
pub fn run(mode: RunMode) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig5",
        "social network latency timeline under a 25 Mbps squeeze (400 RPS)",
        "average latency rises by an order of magnitude while the restriction holds",
    );
    let start_s = 60;
    let restrict_s = mode.secs(120);
    let total = SimDuration::from_secs(start_s + restrict_s + 60);

    let knobs = Knobs {
        policy: PlacementPolicy::K3sDefault(BaselinePolicy::LeastAllocated),
        migrations: false,
        ..Knobs::default()
    };
    let (mut env, mut wl) = social_lan(400.0, 3, 16, &knobs, ArrivalProcess::Constant, 5);
    let frontend_node = node_of(&env, "nginx-frontend");
    env.set_scenario(Scenario::new().restrict_node_egress(
        frontend_node,
        SimTime::from_secs(start_s),
        SimTime::from_secs(start_s + restrict_s),
        Bandwidth::from_mbps(25.0),
    ));
    let mut rec = Recorder::new();
    wl.run(&mut env, total, &mut rec).expect("run completes");

    let series = rec.series("avg_latency_ms");
    let before = series
        .stats_in(SimTime::ZERO, SimTime::from_secs(start_s))
        .mean();
    let during = series
        .stats_in(
            SimTime::from_secs(start_s + 20),
            SimTime::from_secs(start_s + restrict_s),
        )
        .mean();
    report.push_row(
        Row::new("avg latency")
            .with("before_ms", before)
            .with("during_ms", during)
            .with("inflation_x", during / before.max(1e-9)),
    );
    let points: Vec<(f64, f64)> = series.iter().map(|(t, v)| (t.as_secs_f64(), v)).collect();
    report.push_series("avg_latency_ms", &points, 300);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_of_magnitude_inflation() {
        let rep = run(RunMode::Quick);
        let row = rep.row("avg latency").unwrap();
        let inflation = row.value("inflation_x").unwrap();
        assert!(inflation > 10.0, "inflation {inflation}x");
        let before = row.value("before_ms").unwrap();
        assert!((200.0..1500.0).contains(&before), "healthy latency {before}");
    }
}
