//! Poke at the mesh substrate directly: build the CityLab topology,
//! register flows, inject a fault, and watch the probing layer see it.
//!
//! ```text
//! cargo run --example mesh_playground
//! ```

use bass::mesh::{Mesh, NodeId, Topology};
use bass::netmon::{NetMonitor, NetMonitorConfig};
use bass::trace::{citylab_bundle, citylab_topology_links};
use bass::util::time::SimDuration;
use bass::util::units::{Bandwidth, DataSize};

fn main() {
    // Build the 5-node CityLab mesh with trace-driven links.
    let bundle = citylab_bundle(99, SimDuration::from_secs(600));
    let mut topo = Topology::new();
    for n in 0..=4u32 {
        topo.add_node(NodeId(n)).expect("fresh node");
    }
    for l in citylab_topology_links() {
        topo.add_link(NodeId(l.a), NodeId(l.b)).expect("fresh link");
    }
    let mut mesh = Mesh::from_bundle(topo, &bundle).expect("bundle covers links");

    println!("routes (traceroute view):");
    for (src, dst) in [(0u32, 3u32), (2, 4), (4, 2)] {
        let path = mesh.path(NodeId(src), NodeId(dst)).expect("connected");
        let hops: Vec<String> = path.iter().map(|n| n.to_string()).collect();
        println!("  n{src} -> n{dst}: {}", hops.join(" -> "));
    }

    // Two competing flows over the volatile n2–n3 link.
    let f1 = mesh
        .add_flow(NodeId(2), NodeId(3), Bandwidth::from_mbps(9.0))
        .expect("valid");
    let f2 = mesh
        .add_flow(NodeId(2), NodeId(3), Bandwidth::from_mbps(9.0))
        .expect("valid");

    let mut monitor = NetMonitor::new(NetMonitorConfig::default());
    monitor.full_probe(&mesh);
    println!(
        "\nprobed n2–n3 capacity: {}",
        monitor
            .cached_link_capacity(NodeId(2), NodeId(3))
            .expect("probed")
    );

    println!("\n t(s)  cap(n2-n3)  rate(f1)  rate(f2)  msg delay (64 KB)");
    for step in 0..10 {
        if step == 5 {
            println!("  -- fault injected: n2-n3 capped at 3 Mbps --");
            mesh.set_link_cap(NodeId(2), NodeId(3), Some(Bandwidth::from_mbps(3.0)))
                .expect("link exists");
        }
        mesh.advance(SimDuration::from_secs(30));
        let report = monitor.headroom_probe(&mesh);
        let cap = mesh.link_capacity(NodeId(2), NodeId(3)).expect("link");
        let delay = mesh
            .flow_message_delay(f1, DataSize::from_kilobytes(64))
            .expect("flow");
        println!(
            "{:>5}  {:>9.1}  {:>8.2}  {:>8.2}  {}  {}",
            mesh.now().as_secs_f64(),
            cap.as_mbps(),
            mesh.flow_rate(f1).as_mbps(),
            mesh.flow_rate(f2).as_mbps(),
            delay,
            if report.all_ok() { "" } else { "<- headroom violated" },
        );
    }
    println!(
        "\nprobe overhead so far: {} ({} full probes, {} headroom rounds)",
        monitor.overhead().total_bytes(),
        monitor.overhead().full_probes,
        monitor.overhead().headroom_probes
    );
}
