//! Online bandwidth-requirement profiling (paper §8, future work).
//!
//! The shipped BASS requires the developer to profile each edge's
//! bandwidth requirement offline. This module implements the extension
//! the paper proposes: watch an edge's achieved usage after deployment
//! and derive the requirement automatically as a high percentile of the
//! observed samples times a safety factor.

use bass_appdag::ComponentId;
use bass_util::stats::Percentiles;
use bass_util::units::Bandwidth;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Online estimator of per-edge bandwidth requirements.
///
/// # Examples
///
/// ```
/// use bass_appdag::ComponentId;
/// use bass_netmon::OnlineProfiler;
/// use bass_util::prelude::*;
///
/// let mut profiler = OnlineProfiler::new(0.95, 1.2, 8);
/// for mbps in [4.0, 5.0, 4.5, 5.5, 5.0, 4.8, 5.2, 4.9] {
///     profiler.observe(ComponentId(1), ComponentId(2), Bandwidth::from_mbps(mbps));
/// }
/// let est = profiler.estimate(ComponentId(1), ComponentId(2)).unwrap();
/// assert!(est.as_mbps() > 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineProfiler {
    quantile: f64,
    safety_factor: f64,
    min_samples: usize,
    samples: BTreeMap<(ComponentId, ComponentId), Vec<f64>>,
}

impl OnlineProfiler {
    /// Creates a profiler that estimates the `quantile` of observed
    /// usage (in `[0, 1]`) scaled by `safety_factor`, requiring at least
    /// `min_samples` observations before producing an estimate.
    ///
    /// # Panics
    ///
    /// Panics if `quantile` is outside `[0, 1]`, `safety_factor < 1`, or
    /// `min_samples == 0`.
    pub fn new(quantile: f64, safety_factor: f64, min_samples: usize) -> Self {
        assert!((0.0..=1.0).contains(&quantile), "quantile must be in [0,1]");
        assert!(safety_factor >= 1.0, "safety factor must be >= 1");
        assert!(min_samples > 0, "min_samples must be positive");
        OnlineProfiler {
            quantile,
            safety_factor,
            min_samples,
            samples: BTreeMap::new(),
        }
    }

    /// Records one observed usage sample for the edge.
    pub fn observe(&mut self, from: ComponentId, to: ComponentId, used: Bandwidth) {
        self.samples
            .entry((from, to))
            .or_default()
            .push(used.as_mbps());
    }

    /// Number of samples collected for the edge.
    pub fn sample_count(&self, from: ComponentId, to: ComponentId) -> usize {
        self.samples.get(&(from, to)).map_or(0, Vec::len)
    }

    /// The current requirement estimate, or `None` before `min_samples`
    /// observations have been collected.
    pub fn estimate(&self, from: ComponentId, to: ComponentId) -> Option<Bandwidth> {
        let samples = self.samples.get(&(from, to))?;
        if samples.len() < self.min_samples {
            return None;
        }
        let p = Percentiles::from_samples(samples);
        Some(Bandwidth::from_mbps(
            p.quantile(self.quantile) * self.safety_factor,
        ))
    }

    /// All edges with enough samples, with their estimates.
    pub fn estimates(&self) -> Vec<(ComponentId, ComponentId, Bandwidth)> {
        self.samples
            .keys()
            .filter_map(|&(f, t)| self.estimate(f, t).map(|b| (f, t, b)))
            .collect()
    }

    /// Clears all samples for an edge (e.g. after migration changes the
    /// traffic pattern).
    pub fn reset_edge(&mut self, from: ComponentId, to: ComponentId) {
        self.samples.remove(&(from, to));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(x: f64) -> Bandwidth {
        Bandwidth::from_mbps(x)
    }

    #[test]
    fn needs_min_samples() {
        let mut p = OnlineProfiler::new(0.95, 1.2, 5);
        for _ in 0..4 {
            p.observe(ComponentId(1), ComponentId(2), mbps(3.0));
        }
        assert_eq!(p.estimate(ComponentId(1), ComponentId(2)), None);
        p.observe(ComponentId(1), ComponentId(2), mbps(3.0));
        let est = p.estimate(ComponentId(1), ComponentId(2)).unwrap();
        assert!((est.as_mbps() - 3.6).abs() < 1e-9);
    }

    #[test]
    fn estimate_tracks_high_quantile() {
        let mut p = OnlineProfiler::new(1.0, 1.0, 1);
        for v in [1.0, 9.0, 2.0, 3.0] {
            p.observe(ComponentId(1), ComponentId(2), mbps(v));
        }
        assert_eq!(p.estimate(ComponentId(1), ComponentId(2)), Some(mbps(9.0)));
    }

    #[test]
    fn reset_clears_samples() {
        let mut p = OnlineProfiler::new(0.9, 1.0, 1);
        p.observe(ComponentId(1), ComponentId(2), mbps(4.0));
        assert_eq!(p.sample_count(ComponentId(1), ComponentId(2)), 1);
        p.reset_edge(ComponentId(1), ComponentId(2));
        assert_eq!(p.sample_count(ComponentId(1), ComponentId(2)), 0);
        assert_eq!(p.estimate(ComponentId(1), ComponentId(2)), None);
    }

    #[test]
    fn estimates_lists_ready_edges() {
        let mut p = OnlineProfiler::new(0.5, 1.0, 2);
        p.observe(ComponentId(1), ComponentId(2), mbps(1.0));
        p.observe(ComponentId(1), ComponentId(2), mbps(1.0));
        p.observe(ComponentId(2), ComponentId(3), mbps(1.0)); // only 1 sample
        let ests = p.estimates();
        assert_eq!(ests.len(), 1);
        assert_eq!(ests[0].0, ComponentId(1));
    }

    #[test]
    #[should_panic(expected = "safety factor")]
    fn rejects_bad_safety_factor() {
        let _ = OnlineProfiler::new(0.9, 0.5, 1);
    }
}
