//! Ready-made testbed environments matching the paper's setups.

use bass_cluster::{Cluster, NodeSpec};
use bass_mesh::{Mesh, NodeId, Topology};
use bass_trace::{citylab_bundle, citylab_topology_links, TraceBundle};
use bass_util::time::SimDuration;
use bass_util::units::Bandwidth;

/// The microbenchmark cluster (§6.2): `n` workers on a bridged LAN with
/// uniform 1 Gbps links and `cores`-core machines.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn lan_testbed(n: u32, cores: u64) -> (Mesh, Cluster) {
    assert!(n > 0, "need at least one node");
    let mesh = Mesh::with_uniform_capacity(Topology::full_mesh(n), Bandwidth::from_mbps(1000.0))
        .expect("full mesh is connected");
    let cluster = Cluster::new((0..n).map(|i| NodeSpec::cores_mb(i, cores, 16_384)))
        .expect("unique node ids");
    (mesh, cluster)
}

/// The CityLab emulation (§6.3): node 0 runs the control plane (no
/// workloads), workers 1–4 are heterogeneous (8, 12, 12, 8 cores, 8 GB
/// RAM — the paper's mix of 12- and 8-core VMs), and the wireless links
/// replay the CityLab-like trace bundle. The two big workers sit on
/// either side of the volatile n2–n3 link, so bandwidth-aware packing
/// still has to reckon with variation.
///
/// The returned cluster contains only the four workers; the mesh
/// contains all five nodes so control traffic paths exist.
pub fn citylab_testbed(seed: u64, duration: SimDuration) -> (Mesh, Cluster, TraceBundle) {
    let bundle = citylab_bundle(seed, duration);
    let mut topo = Topology::new();
    for n in 0..=4u32 {
        topo.add_node(NodeId(n)).expect("fresh node");
    }
    for link in citylab_topology_links() {
        topo.add_link(NodeId(link.a), NodeId(link.b)).expect("fresh link");
    }
    let mesh = Mesh::from_bundle(topo, &bundle).expect("bundle covers all links");
    let cluster = Cluster::new([
        NodeSpec::cores_mb(1, 8, 8_192),
        NodeSpec::cores_mb(2, 12, 8_192),
        NodeSpec::cores_mb(3, 12, 8_192),
        NodeSpec::cores_mb(4, 8, 8_192),
    ])
    .expect("unique node ids");
    (mesh, cluster, bundle)
}

/// The CityLab testbed with *flat* (maximum-of-trace) link capacities —
/// Table 2's "no bandwidth variation" control.
pub fn citylab_testbed_flat(seed: u64, duration: SimDuration) -> (Mesh, Cluster) {
    let (mesh0, cluster, bundle) = citylab_testbed(seed, duration);
    let flat = bundle.flattened_to_max();
    let mesh = Mesh::from_bundle(mesh0.topology().clone(), &flat).expect("bundle covers links");
    (mesh, cluster)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_shape() {
        let (mesh, cluster) = lan_testbed(3, 12);
        assert_eq!(mesh.topology().node_count(), 3);
        assert_eq!(cluster.node_count(), 3);
        assert_eq!(
            mesh.link_capacity(NodeId(0), NodeId(1)).unwrap(),
            Bandwidth::from_mbps(1000.0)
        );
    }

    #[test]
    fn citylab_shape() {
        let (mesh, cluster, bundle) = citylab_testbed(42, SimDuration::from_secs(60));
        assert_eq!(mesh.topology().node_count(), 5);
        assert_eq!(cluster.node_count(), 4, "control node hosts no work");
        assert_eq!(bundle.len(), 6);
        // Heterogeneous workers.
        assert_eq!(cluster.node_spec(NodeId(2)).unwrap().capacity.cpu.as_cores(), 12.0);
        assert_eq!(cluster.node_spec(NodeId(4)).unwrap().capacity.cpu.as_cores(), 8.0);
    }

    #[test]
    fn flat_variant_has_constant_capacity() {
        let (mut mesh, _) = citylab_testbed_flat(42, SimDuration::from_secs(120));
        let c0 = mesh.link_capacity(NodeId(3), NodeId(4)).unwrap();
        mesh.advance(SimDuration::from_secs(60));
        let c1 = mesh.link_capacity(NodeId(3), NodeId(4)).unwrap();
        assert_eq!(c0, c1);
        let (mut varying, _, _) = citylab_testbed(42, SimDuration::from_secs(120));
        let v0 = varying.link_capacity(NodeId(3), NodeId(4)).unwrap();
        varying.advance(SimDuration::from_secs(60));
        let v1 = varying.link_capacity(NodeId(3), NodeId(4)).unwrap();
        assert_ne!(v0, v1, "trace-driven capacity varies");
        assert!(c0 >= v0.max(v1), "flat capacity is the trace max");
    }
}
