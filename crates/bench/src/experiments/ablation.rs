//! Extension (not a paper artifact): placement-quality ablation of the
//! ordering heuristics.
//!
//! For each application shape — the paper's three apps, the Fig. 6
//! example, and a batch of random DAGs — place with every policy and
//! report the bandwidth left crossing nodes (lower is better; this is
//! the quantity both heuristics minimize, §3.2.1). Covers the design
//! choices DESIGN.md calls out: Fig. 6-consistent edge-weight BFS vs the
//! pseudocode's cumulative variant, and the §8 hybrid heuristic.

use crate::{ExperimentReport, Row, RunMode};
use bass_appdag::{catalog, AppDag};
use bass_apps::testbeds::lan_testbed;
use bass_cluster::BaselinePolicy;
use bass_core::heuristics::BfsWeighting;
use bass_core::placement::crossing_bandwidth;
use bass_core::{BassScheduler, PlacementPolicy};

const POLICIES: &[(&str, PlacementPolicy)] = &[
    ("bfs-edge", PlacementPolicy::BreadthFirst(BfsWeighting::EdgeWeight)),
    (
        "bfs-cumulative",
        PlacementPolicy::BreadthFirst(BfsWeighting::CumulativePath),
    ),
    ("longest-path", PlacementPolicy::LongestPath),
    ("hybrid", PlacementPolicy::Hybrid { fanout_threshold: 3 }),
    (
        "k3s-default",
        PlacementPolicy::K3sDefault(BaselinePolicy::LeastAllocated),
    ),
];

fn crossing_fraction(dag: &AppDag, policy: PlacementPolicy, nodes: u32, cores: u64) -> Option<f64> {
    let (mesh, mut cluster) = lan_testbed(nodes, cores);
    let placement = BassScheduler::new(policy)
        .schedule(dag, &mut cluster, &mesh)
        .ok()?;
    let total = dag.total_bandwidth().as_bps();
    if total == 0.0 {
        return Some(0.0);
    }
    Some(crossing_bandwidth(dag, &placement).as_bps() / total)
}

/// Runs the ablation.
pub fn run(mode: RunMode) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "ablation",
        "placement quality (crossing-bandwidth fraction) by heuristic — extension",
        "expectation: bandwidth-aware orderings leave less traffic on the wire than k3s. \
         Finding: the Fig. 6-consistent edge-weight BFS matches the cumulative variant on \
         chain-shaped apps, while on the fan-out-heavy social DAG the cumulative variant \
         co-locates slightly more traffic — the two genuinely trade off by DAG shape",
    );
    let random_count = match mode {
        RunMode::Full => 20u64,
        RunMode::Quick => 8,
    };

    let mut shapes: Vec<(String, AppDag, u32, u64)> = vec![
        ("camera".into(), catalog::camera_pipeline(), 3, 12),
        ("social".into(), catalog::social_network(50.0), 4, 4),
        ("fig6".into(), catalog::fig6_example(), 2, 4),
    ];
    // Random DAGs aggregate into a single averaged row per policy.
    for seed in 0..random_count {
        shapes.push((
            format!("random-{seed}"),
            catalog::random_dag(seed, 12, 0.3),
            4,
            8,
        ));
    }

    let mut random_sums: Vec<(f64, u32)> = vec![(0.0, 0); POLICIES.len()];
    for (label, dag, nodes, cores) in &shapes {
        let mut row = Row::new(label.clone());
        for (i, (pname, policy)) in POLICIES.iter().enumerate() {
            if let Some(frac) = crossing_fraction(dag, *policy, *nodes, *cores) {
                if label.starts_with("random-") {
                    random_sums[i].0 += frac;
                    random_sums[i].1 += 1;
                } else {
                    row = row.with(*pname, frac);
                }
            }
        }
        if !label.starts_with("random-") {
            report.push_row(row);
        }
    }
    let mut avg_row = Row::new(format!("random×{random_count} (mean)"));
    for (i, (pname, _)) in POLICIES.iter().enumerate() {
        let (sum, n) = random_sums[i];
        if n > 0 {
            avg_row = avg_row.with(*pname, sum / n as f64);
        }
    }
    report.push_row(avg_row);
    report.note("values are crossing bandwidth as a fraction of total DAG bandwidth (0 = fully co-located)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_aware_beats_oblivious_on_paper_apps() {
        let rep = run(RunMode::Quick);
        for app in ["camera", "social"] {
            let row = rep.row(app).unwrap();
            let k3s = row.value("k3s-default").unwrap();
            let bfs = row.value("bfs-edge").unwrap();
            let lp = row.value("longest-path").unwrap();
            assert!(bfs <= k3s + 1e-9, "{app}: bfs {bfs} vs k3s {k3s}");
            assert!(lp <= k3s + 1e-9, "{app}: lp {lp} vs k3s {k3s}");
        }
    }

    #[test]
    fn bfs_weighting_variants_trade_off_by_shape() {
        let rep = run(RunMode::Quick);
        // On the chain-shaped apps the Fig. 6-consistent variant is not
        // worse…
        for app in ["camera", "fig6"] {
            let row = rep.row(app).unwrap();
            let edge = row.value("bfs-edge").unwrap();
            let cumulative = row.value("bfs-cumulative").unwrap();
            assert!(
                edge <= cumulative + 1e-9,
                "{app}: edge {edge} vs cumulative {cumulative}"
            );
        }
        // …and on every shape both variants stay in the same ballpark
        // (within 10 percentage points of crossing fraction).
        for row in &rep.rows {
            if let (Some(e), Some(c)) = (row.value("bfs-edge"), row.value("bfs-cumulative")) {
                assert!((e - c).abs() < 0.10, "{}: {e} vs {c}", row.label);
            }
        }
    }

    #[test]
    fn random_average_is_present_and_sane() {
        let rep = run(RunMode::Quick);
        let avg = rep.rows.last().unwrap();
        assert!(avg.label.starts_with("random"));
        for (name, _) in POLICIES {
            let v = avg.value(name).unwrap();
            assert!((0.0..=1.0).contains(&v), "{name}: {v}");
        }
    }
}
