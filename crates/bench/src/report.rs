//! Experiment reports: the rows and series each paper artifact plots.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One labelled row of an experiment's result table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Row label (e.g. `"BFS, with variation"`).
    pub label: String,
    /// `(column name, value)` pairs in display order.
    pub values: Vec<(String, f64)>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>) -> Self {
        Row {
            label: label.into(),
            values: Vec::new(),
        }
    }

    /// Appends a `(column, value)` pair.
    pub fn with(mut self, column: impl Into<String>, value: f64) -> Self {
        self.values.push((column.into(), value));
        self
    }

    /// Looks up a column's value.
    pub fn value(&self, column: &str) -> Option<f64> {
        self.values
            .iter()
            .find(|(c, _)| c == column)
            .map(|&(_, v)| v)
    }
}

/// A complete experiment result: identification, the paper's claim, the
/// measured rows, and optional `(x, y)` series for timeline/CDF plots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Artifact id (e.g. `"fig11"`, `"tab2"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// What the paper reports for this artifact (the shape to match).
    pub paper_claim: String,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Named point series (timelines, CDFs), kept small by downsampling.
    pub series: Vec<(String, Vec<(f64, f64)>)>,
    /// Free-form notes (calibration caveats, event logs).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        paper_claim: impl Into<String>,
    ) -> Self {
        ExperimentReport {
            id: id.into(),
            title: title.into(),
            paper_claim: paper_claim.into(),
            rows: Vec::new(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Appends a series, downsampled to at most `max_points` points.
    pub fn push_series(&mut self, name: impl Into<String>, points: &[(f64, f64)], max_points: usize) {
        let stride = (points.len() / max_points.max(1)).max(1);
        let sampled: Vec<(f64, f64)> = points.iter().step_by(stride).copied().collect();
        self.series.push((name.into(), sampled));
    }

    /// Appends a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Finds a row by label.
    pub fn row(&self, label: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.label == label)
    }
}

impl fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id.to_uppercase(), self.title)?;
        writeln!(f, "paper: {}", self.paper_claim)?;
        // Collect the union of columns in first-seen order.
        let mut columns: Vec<&str> = Vec::new();
        for row in &self.rows {
            for (c, _) in &row.values {
                if !columns.contains(&c.as_str()) {
                    columns.push(c);
                }
            }
        }
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(5)
            .max(5);
        write!(f, "{:label_w$}", "row")?;
        for c in &columns {
            write!(f, " | {c:>14}")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:label_w$}", row.label)?;
            for c in &columns {
                match row.value(c) {
                    Some(v) => write!(f, " | {v:>14.3}")?,
                    None => write!(f, " | {:>14}", "-")?,
                }
            }
            writeln!(f)?;
        }
        for (name, points) in &self.series {
            writeln!(f, "series '{name}': {} points", points.len())?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_lookup() {
        let row = Row::new("bfs").with("latency_ms", 410.0).with("p99", 900.0);
        assert_eq!(row.value("latency_ms"), Some(410.0));
        assert_eq!(row.value("nope"), None);
    }

    #[test]
    fn report_display_includes_everything() {
        let mut rep = ExperimentReport::new("fig10", "camera latency", "BFS 410 < LP 428 < k3s 433");
        rep.push_row(Row::new("bfs").with("mean_ms", 410.0));
        rep.push_row(Row::new("k3s").with("mean_ms", 433.0).with("extra", 1.0));
        rep.push_series("timeline", &[(0.0, 1.0), (1.0, 2.0)], 10);
        rep.note("calibrated");
        let s = rep.to_string();
        assert!(s.contains("FIG10"));
        assert!(s.contains("410.000"));
        assert!(s.contains("timeline"));
        assert!(s.contains("calibrated"));
        assert!(s.contains('-'), "missing cells print a dash");
    }

    #[test]
    fn series_downsampling() {
        let mut rep = ExperimentReport::new("x", "t", "c");
        let points: Vec<(f64, f64)> = (0..1000).map(|i| (i as f64, 0.0)).collect();
        rep.push_series("big", &points, 100);
        assert!(rep.series[0].1.len() <= 101);
    }

    #[test]
    fn json_roundtrip() {
        let mut rep = ExperimentReport::new("tab1", "migrations", "6→2, 1→1, 1→1");
        rep.push_row(Row::new("iteration 1").with("violating", 6.0).with("migrated", 2.0));
        let json = serde_json::to_string(&rep).unwrap();
        let back: ExperimentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rep);
    }
}
