//! The camera-processing workload (Fig. 9): per-frame end-to-end
//! latency over the deployed pipeline.
//!
//! A frame's end-to-end latency is the sum, along the
//! camera → sampler → detector → image-listener path, of each stage's
//! service time (scaled by its restart-recovery slowdown) and each
//! inter-stage transfer delay at the current network state. Service
//! times are calibrated so the healthy LAN deployment lands near the
//! paper's ≈410–430 ms (Fig. 10a) with the detector dominating
//! (≈300 ms of GPU-less YOLO inference).

use bass_appdag::{AppDag, ComponentId};
use bass_emu::{Recorder, SimEnv};
use bass_util::time::SimDuration;
use bass_util::units::DataSize;
use serde::{Deserialize, Serialize};

/// Per-stage service times and per-hop message sizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CameraCalibration {
    /// Camera/RTP publishing time per frame.
    pub camera_ms: u64,
    /// Frame-similarity sampling time.
    pub sampler_ms: u64,
    /// YOLO inference time.
    pub detector_ms: u64,
    /// Listener handling time.
    pub listener_ms: u64,
    /// Raw frame size on the camera→sampler hop.
    pub frame: DataSize,
    /// Sampled frame size on the sampler→detector hop.
    pub sampled_frame: DataSize,
    /// Annotated image size on the detector→image hop.
    pub annotated: DataSize,
    /// Label message size on the detector→label hop.
    pub labels: DataSize,
}

impl Default for CameraCalibration {
    fn default() -> Self {
        CameraCalibration {
            camera_ms: 10,
            sampler_ms: 60,
            detector_ms: 300,
            listener_ms: 10,
            frame: DataSize::from_kilobytes(60),
            sampled_frame: DataSize::from_kilobytes(50),
            annotated: DataSize::from_kilobytes(40),
            labels: DataSize::from_kilobytes(1),
        }
    }
}

/// The camera workload driver.
///
/// Attach to an environment deployed with
/// [`bass_appdag::catalog::camera_pipeline`]; call
/// [`CameraWorkload::observe`] every tick to sample a frame's latency.
#[derive(Debug, Clone)]
pub struct CameraWorkload {
    cal: CameraCalibration,
    camera: ComponentId,
    sampler: ComponentId,
    detector: ComponentId,
    image: ComponentId,
    label: ComponentId,
}

impl CameraWorkload {
    /// Binds the workload to a camera-pipeline DAG.
    ///
    /// # Panics
    ///
    /// Panics if the DAG is not the camera pipeline (missing components).
    pub fn new(dag: &AppDag, cal: CameraCalibration) -> Self {
        let id = |name: &str| {
            dag.component_by_name(name)
                .unwrap_or_else(|| panic!("camera pipeline must contain '{name}'"))
                .id
        };
        CameraWorkload {
            cal,
            camera: id("camera-stream"),
            sampler: id("frame-sampler"),
            detector: id("object-detector"),
            image: id("image-listener"),
            label: id("label-listener"),
        }
    }

    /// End-to-end latency of one frame through the annotated-image path
    /// at the environment's current state.
    pub fn frame_latency(&self, env: &SimEnv) -> SimDuration {
        let svc = |c: ComponentId, ms: u64| {
            SimDuration::from_millis(ms).mul_f64(env.slowdown(c))
        };
        svc(self.camera, self.cal.camera_ms)
            + env.edge_delay(self.camera, self.sampler, self.cal.frame)
            + svc(self.sampler, self.cal.sampler_ms)
            + env.edge_delay(self.sampler, self.detector, self.cal.sampled_frame)
            + svc(self.detector, self.cal.detector_ms)
            + env.edge_delay(self.detector, self.image, self.cal.annotated)
            + svc(self.image, self.cal.listener_ms)
    }

    /// Latency of the label branch (detector → label listener).
    pub fn label_latency(&self, env: &SimEnv) -> SimDuration {
        let svc = |c: ComponentId, ms: u64| {
            SimDuration::from_millis(ms).mul_f64(env.slowdown(c))
        };
        svc(self.camera, self.cal.camera_ms)
            + env.edge_delay(self.camera, self.sampler, self.cal.frame)
            + svc(self.sampler, self.cal.sampler_ms)
            + env.edge_delay(self.sampler, self.detector, self.cal.sampled_frame)
            + svc(self.detector, self.cal.detector_ms)
            + env.edge_delay(self.detector, self.label, self.cal.labels)
            + svc(self.label, self.cal.listener_ms)
    }

    /// Records one observation: a `latency_ms` sample and an
    /// `e2e_latency_ms` time-series point.
    pub fn observe(&self, env: &SimEnv, rec: &mut Recorder) {
        let lat_ms = self.frame_latency(env).as_secs_f64() * 1e3;
        rec.record_sample("latency_ms", lat_ms);
        rec.record_series("e2e_latency_ms", env.now(), lat_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbeds::lan_testbed;
    use bass_appdag::catalog;
    use bass_core::heuristics::BfsWeighting;
    use bass_core::PlacementPolicy;
    use bass_emu::SimEnvConfig;
    use bass_util::units::Bandwidth;

    fn env(policy: PlacementPolicy) -> SimEnv {
        let (mesh, cluster) = lan_testbed(3, 12);
        let cfg = SimEnvConfig { policy, ..Default::default() };
        let mut env = SimEnv::new(mesh, cluster, catalog::camera_pipeline(), cfg);
        env.deploy(&[]).unwrap();
        env
    }

    #[test]
    fn healthy_lan_latency_matches_fig10_ballpark() {
        let mut env = env(PlacementPolicy::BreadthFirst(BfsWeighting::EdgeWeight));
        let wl = CameraWorkload::new(&env.dag().clone(), CameraCalibration::default());
        let mut rec = Recorder::new();
        env.run_for(SimDuration::from_secs(10), |e| {
            wl.observe(e, &mut rec);
        })
        .unwrap();
        let mean = rec.stats("latency_ms").mean();
        assert!(
            (350.0..500.0).contains(&mean),
            "Fig. 10a reports ≈410 ms for BFS; got {mean}"
        );
    }

    #[test]
    fn scheduler_ordering_matches_fig10() {
        // BFS ≤ LP < k3s in crossing bandwidth → same order in latency.
        let mut results = Vec::new();
        for policy in [
            PlacementPolicy::BreadthFirst(BfsWeighting::EdgeWeight),
            PlacementPolicy::LongestPath,
            PlacementPolicy::K3sDefault(bass_cluster::BaselinePolicy::LeastAllocated),
        ] {
            let mut e = env(policy);
            let wl = CameraWorkload::new(&e.dag().clone(), CameraCalibration::default());
            let mut rec = Recorder::new();
            e.run_for(SimDuration::from_secs(10), |e| wl.observe(e, &mut rec))
                .unwrap();
            results.push(rec.stats("latency_ms").mean());
        }
        assert!(results[0] <= results[1] + 1e-9, "bfs {} vs lp {}", results[0], results[1]);
        assert!(results[1] < results[2], "lp {} vs k3s {}", results[1], results[2]);
    }

    #[test]
    fn bandwidth_squeeze_inflates_latency() {
        // Migrations off so the squeeze persists (the "no migration"
        // baseline of Figs. 12/13).
        let (mesh, cluster) = lan_testbed(3, 12);
        let cfg = SimEnvConfig {
            policy: PlacementPolicy::BreadthFirst(BfsWeighting::EdgeWeight),
            migrations_enabled: false,
            ..Default::default()
        };
        let mut e = SimEnv::new(mesh, cluster, catalog::camera_pipeline(), cfg);
        e.deploy(&[]).unwrap();
        let dag = e.dag().clone();
        let wl = CameraWorkload::new(&dag, CameraCalibration::default());
        let healthy = wl.frame_latency(&e);
        // Cap the crossing link under the 6 Mbps sampler→detector demand.
        let placement = e.placement();
        let s = placement[&dag.component_by_name("frame-sampler").unwrap().id];
        let d = placement[&dag.component_by_name("object-detector").unwrap().id];
        e.mesh_mut().set_link_cap(s, d, Some(Bandwidth::from_mbps(1.0))).unwrap();
        for _ in 0..50 {
            e.step().unwrap();
        }
        let squeezed = wl.frame_latency(&e);
        assert!(
            squeezed > healthy * 2,
            "squeezed {squeezed} vs healthy {healthy}"
        );
    }

    #[test]
    fn label_branch_is_faster_than_image_branch() {
        let e = env(PlacementPolicy::BreadthFirst(BfsWeighting::EdgeWeight));
        let wl = CameraWorkload::new(&e.dag().clone(), CameraCalibration::default());
        assert!(wl.label_latency(&e) <= wl.frame_latency(&e));
    }
}
